//! # ham-online
//!
//! The incremental training loop that closes **train → publish → serve**
//! inside one process.
//!
//! The pieces existed separately: the batched trainer (`ham-core`) makes a
//! retrain cheap, and the registry hot-swap (`ham-serve`) makes publishing
//! free of traffic pauses — but nothing connected them, and a *full* retrain
//! per round still costs time proportional to the whole interaction log.
//! [`OnlineTrainer`] connects them and makes each round cost proportional to
//! the **fresh** data only:
//!
//! ```text
//!        ┌──────────────────────────────────────────────────────┐
//!        │                     OnlineTrainer                    │
//!        │                                                      │
//!  ingest│  AppendableDataset ──delta_view──▶ BatchSampler      │
//!  ──────┼─▶ (watermarked log)               ::over_delta       │
//!        │        ▲                              │ fresh        │
//!        │        │ mark_trained                 ▼ windows      │
//!        │        └────────────────── TrainerState::train_round │
//!        │                            (warm Adam moments,       │
//!        │                             grown embedding rows)    │
//!        │                                      │ snapshot      │
//!        └──────────────────────────────────────┼───────────────┘
//!                                               ▼ publish
//!          RecServer ◀──versioned Arc──  ModelRegistry
//!          (keeps serving v_n while v_{n+1} swaps in)
//! ```
//!
//! Per [`OnlineTrainer::run_round`]:
//!
//! 1. the embedding tables and Adam moments **grow row-wise** for any users
//!    or items first seen since the last round (deterministic per-row init),
//! 2. [`BatchSampler::over_delta`] packs mini-batches from exactly the
//!    sliding windows the watermark has not covered — negatives drawn
//!    against each user's full history,
//! 3. [`TrainerState::train_round`] runs the PR 4 chunked GEMM/tape gradient
//!    pipeline for the configured epochs, warm-starting from the previous
//!    round's Adam moments with **per-row bias correction** (a cold row
//!    first touched at global step 10 000 gets the same damped first update
//!    a row touched at step 1 gets),
//! 4. the updated parameters are frozen into a
//!    [`ServingModel`](ham_serve::ServingModel) and published through the
//!    [`ModelRegistry`] — a live [`RecServer`](ham_serve::RecServer) on the
//!    same registry keeps answering throughout; in-flight requests finish on
//!    the snapshot they started with.
//!
//! ## Determinism contract
//!
//! The trained parameters after any round are a pure function of the
//! (initial data, append schedule, round schedule, seed): replaying the same
//! stream from scratch — or resuming from an [`OnlineCheckpoint`] in a
//! fresh process — reproduces them bit for bit. Pinned by the tests in
//! `tests/online_loop.rs`.
//!
//! ## Quickstart
//!
//! ```
//! use ham_core::{HamConfig, HamVariant, TrainConfig};
//! use ham_data::SequenceDataset;
//! use ham_online::{OnlineConfig, OnlineTrainer};
//! use ham_serve::{RecServer, RecommendRequest, ServerConfig};
//!
//! let initial = SequenceDataset::new("toy", vec![(0..10).collect(); 6], 12);
//! let config = OnlineConfig {
//!     model: HamConfig::for_variant(HamVariant::HamM).with_dimensions(8, 4, 2, 2, 1),
//!     train: TrainConfig { epochs: 1, batch_size: 16, ..TrainConfig::default() },
//!     shards: 2,
//!     quantize_serving: false,
//!     seed: 7,
//! };
//! let mut trainer = OnlineTrainer::bootstrap(&initial, config);
//! let server = RecServer::start(trainer.registry(), ServerConfig::default());
//!
//! // fresh traffic arrives while version 1 serves...
//! trainer.ingest(0, 5);
//! trainer.ingest(0, 9);
//! let report = trainer.run_round();
//! assert_eq!(report.version, 2);
//! let response = server.submit(RecommendRequest::new(0, vec![5, 9], 3)).unwrap();
//! assert_eq!(response.model_version, 2);
//! ```

#![warn(missing_docs)]

use ham_core::{HamConfig, HamModel, TrainConfig, TrainerState};
use ham_data::append::AppendableDataset;
use ham_data::batch::BatchSampler;
use ham_data::dataset::{ItemId, SequenceDataset, UserId};
use ham_serve::{ModelRegistry, ServingModel};
use ham_telemetry::{Counter, Gauge, Histogram, Telemetry};
use std::sync::Arc;
use std::time::Instant;

/// Configuration of the online loop.
#[derive(Debug, Clone, Copy)]
pub struct OnlineConfig {
    /// Model hyper-parameters (fixed across rounds).
    pub model: HamConfig,
    /// Training hyper-parameters; `epochs` is the epoch count **per round**
    /// (over the fresh windows only, except the bootstrap round which covers
    /// the full initial history).
    pub train: TrainConfig,
    /// Shard count of the published serving snapshots.
    pub shards: usize,
    /// Freeze an int8 panel next to every published shard and serve through
    /// the quantized pre-selection + exact re-rank path (¼ of the
    /// candidate-matrix traffic per request; results stay bit-identical to
    /// the exact path under the serving layer's recall guardrail).
    pub quantize_serving: bool,
    /// Master seed: model init, growth rows and every round's shuffle /
    /// negative stream derive from it deterministically.
    pub seed: u64,
}

/// What one incremental round did.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// Round index (the bootstrap round is 1).
    pub round: u64,
    /// Registry version serving this round's snapshot (unchanged if the
    /// round had nothing to train and skipped publishing).
    pub version: u64,
    /// Interactions appended since the previous round.
    pub fresh_interactions: usize,
    /// Sliding-window instances trained (per epoch).
    pub instances_trained: usize,
    /// Wall-clock seconds spent in gradient/optimizer work.
    pub train_seconds: f64,
    /// Wall-clock seconds spent freezing + publishing the snapshot (the
    /// registry swap itself is nanoseconds; this is dominated by sharding
    /// the candidate matrix).
    pub publish_seconds: f64,
    /// Per-epoch loss/throughput statistics of the round.
    pub epochs: Vec<ham_core::EpochStats>,
}

/// Everything needed to resume the loop in a fresh process: the model
/// parameters, the optimizer moments (with per-row step counts), the
/// watermarked interaction log and the round counter.
#[derive(Debug, Clone)]
pub struct OnlineCheckpoint {
    /// The model parameters at checkpoint time.
    pub model: HamModel,
    /// The warm Adam state.
    pub adam: ham_autograd::AdamState,
    /// The optimizer configuration the moments were accumulated under
    /// (restoring with a different scheme would reinterpret the warm
    /// moments and silently break the bit-identical-resume contract).
    pub adam_config: ham_autograd::AdamConfig,
    /// The interaction log with its per-user trained watermarks.
    pub data: AppendableDataset,
    /// Completed round count.
    pub round: u64,
}

/// The loop's metric handles, resolved once from a [`Telemetry`] registry.
/// `None` when telemetry is disabled — the loop then records nothing.
struct OnlineMetrics {
    round_micros: Histogram,
    train_micros: Histogram,
    publish_micros: Histogram,
    rounds_total: Counter,
    fresh_interactions_total: Counter,
    instances_trained_total: Counter,
    table_growth_rows_total: Counter,
    publishes_total: Counter,
    serving_staleness_seconds: Gauge,
}

impl OnlineMetrics {
    fn resolve(telemetry: &Telemetry) -> Option<Self> {
        let registry = telemetry.registry()?;
        Some(Self {
            round_micros: registry.histogram("online_round_micros"),
            train_micros: registry.histogram("online_train_micros"),
            publish_micros: registry.histogram("online_publish_micros"),
            rounds_total: registry.counter("online_rounds_total"),
            fresh_interactions_total: registry.counter("online_fresh_interactions_total"),
            instances_trained_total: registry.counter("online_instances_trained_total"),
            table_growth_rows_total: registry.counter("online_table_growth_rows_total"),
            publishes_total: registry.counter("online_publishes_total"),
            serving_staleness_seconds: registry.gauge("online_serving_staleness_seconds"),
        })
    }
}

/// The owner of the train→publish→serve loop. See the module docs.
pub struct OnlineTrainer {
    config: OnlineConfig,
    data: AppendableDataset,
    state: TrainerState,
    registry: Arc<ModelRegistry>,
    round: u64,
    telemetry: Telemetry,
    metrics: Option<OnlineMetrics>,
    last_publish: Option<Instant>,
}

impl OnlineTrainer {
    /// Trains the bootstrap round on `initial`'s full history, publishes the
    /// resulting model as version 1 and returns the running loop. Start a
    /// [`RecServer`](ham_serve::RecServer) on [`Self::registry`] to serve.
    ///
    /// # Panics
    /// Panics if `initial` has no users or items, or the configuration is
    /// invalid.
    pub fn bootstrap(initial: &SequenceDataset, config: OnlineConfig) -> Self {
        Self::bootstrap_with_telemetry(initial, config, Telemetry::from_env())
    }

    /// [`Self::bootstrap`] with an explicit [`Telemetry`] handle. With an
    /// enabled handle every round records `online_*` metrics into its
    /// registry (the bootstrap round included); a disabled handle makes
    /// recording a no-op.
    pub fn bootstrap_with_telemetry(initial: &SequenceDataset, config: OnlineConfig, telemetry: Telemetry) -> Self {
        let data = AppendableDataset::from_dataset(initial);
        let state = TrainerState::new(
            data.num_users().max(1),
            data.num_items().max(1),
            &config.model,
            &config.train,
            config.seed,
        );
        let metrics = OnlineMetrics::resolve(&telemetry);
        let mut trainer = Self {
            config,
            data,
            state,
            // placeholder registry; the bootstrap round's publish replaces v1
            registry: Arc::new(ModelRegistry::new(ServingModel::from_parts(
                "bootstrap-empty",
                &ham_tensor::Matrix::zeros(1, 1),
                1,
                |_, _| vec![0.0],
            ))),
            round: 0,
            telemetry,
            metrics,
            last_publish: None,
        };
        trainer.run_round();
        trainer
    }

    /// Resumes a checkpointed loop: training on is bit-identical to the
    /// trainer that exported the checkpoint (given the same `config`).
    pub fn restore(checkpoint: OnlineCheckpoint, config: OnlineConfig) -> Self {
        Self::restore_with_telemetry(checkpoint, config, Telemetry::from_env())
    }

    /// [`Self::restore`] with an explicit [`Telemetry`] handle.
    pub fn restore_with_telemetry(checkpoint: OnlineCheckpoint, config: OnlineConfig, telemetry: Telemetry) -> Self {
        let state = TrainerState::from_model(
            &checkpoint.model,
            &config.train,
            checkpoint.adam_config,
            checkpoint.adam,
            config.seed,
        );
        let serving = freeze(checkpoint.model, config.shards, config.quantize_serving, checkpoint.round);
        let metrics = OnlineMetrics::resolve(&telemetry);
        Self {
            config,
            data: checkpoint.data,
            state,
            registry: Arc::new(ModelRegistry::new(serving)),
            round: checkpoint.round,
            telemetry,
            metrics,
            last_publish: None,
        }
    }

    /// Exports the loop's full state for [`Self::restore`].
    pub fn checkpoint(&self) -> OnlineCheckpoint {
        OnlineCheckpoint {
            model: self.state.snapshot(),
            adam: self.state.adam_state(),
            adam_config: self.state.adam_config(),
            data: self.data.clone(),
            round: self.round,
        }
    }

    /// The registry the loop publishes into (share it with a `RecServer`).
    pub fn registry(&self) -> Arc<ModelRegistry> {
        Arc::clone(&self.registry)
    }

    /// The telemetry handle the loop records into (disabled unless the loop
    /// was built with an enabled handle or `HAM_TELEMETRY` is set).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Updates the `online_serving_staleness_seconds` gauge to the seconds
    /// elapsed since the last publish and returns that value. The gauge only
    /// moves when the loop publishes or someone calls this — call it from
    /// whatever cadence scrapes the registry. Returns 0 before any publish.
    pub fn refresh_staleness(&self) -> u64 {
        let staleness = self.last_publish.map_or(0, |at| at.elapsed().as_secs());
        if let Some(metrics) = &self.metrics {
            metrics.serving_staleness_seconds.set(staleness as i64);
        }
        staleness
    }

    /// Appends one fresh interaction. Unknown users and items are accepted;
    /// the next round grows the embedding tables to cover them.
    pub fn ingest(&mut self, user: UserId, item: ItemId) {
        self.data.append(user, item);
    }

    /// Interactions ingested since the last completed round.
    pub fn pending_interactions(&self) -> usize {
        self.data.fresh_interactions()
    }

    /// Completed rounds (bootstrap included).
    pub fn rounds(&self) -> u64 {
        self.round
    }

    /// The interaction log backing the loop.
    pub fn data(&self) -> &AppendableDataset {
        &self.data
    }

    /// A snapshot of the current (possibly not-yet-published) parameters.
    pub fn model(&self) -> HamModel {
        self.state.snapshot()
    }

    /// Runs one incremental round: grow → train the fresh windows →
    /// publish. With nothing fresh to train the round is a no-op (no
    /// publish, version unchanged). See the module docs for the loop.
    pub fn run_round(&mut self) -> RoundReport {
        let fresh_interactions = self.data.fresh_interactions();
        let round = self.round + 1;
        let round_started = Instant::now();
        let train_started = Instant::now();
        let rows_before = self.state.num_users() + self.state.num_items();
        self.state.grow_to(self.data.num_users().max(1), self.data.num_items().max(1));
        let grown_rows = (self.state.num_users() + self.state.num_items()).saturating_sub(rows_before);
        let delta = self.data.delta_view(self.config.model.n_h, self.config.model.n_p);
        let (instances_trained, epochs) = if delta.is_empty() {
            (0, Vec::new())
        } else {
            let mut sampler = BatchSampler::over_delta(
                &delta,
                self.data.num_items().max(1),
                self.config.model.n_h,
                self.config.model.n_p,
                self.config.model.n_l,
                self.config.train.batch_size.max(1),
                round_seed(self.config.seed, round),
            );
            let epochs = self.state.train_round(&mut sampler, self.config.train.epochs.max(1));
            self.data.mark_trained();
            (sampler.num_instances(), epochs)
        };
        let train_seconds = train_started.elapsed().as_secs_f64();

        // Publish: freeze the updated parameters and hot-swap the registry.
        // Round 1 (bootstrap) replaces the placeholder model installed by
        // `bootstrap`, so the first *served* version is already trained.
        let publish_started = Instant::now();
        let mut version = self.registry.version();
        let mut published = false;
        if instances_trained > 0 || round == 1 {
            let serving = freeze(self.state.snapshot(), self.config.shards, self.config.quantize_serving, round);
            version = if round == 1 {
                // keep version 1 == first trained model
                self.registry = Arc::new(ModelRegistry::new(serving));
                self.registry.version()
            } else {
                self.registry.publish(serving)
            };
            published = true;
            self.last_publish = Some(Instant::now());
        }
        let publish_seconds = publish_started.elapsed().as_secs_f64();
        self.round = round;
        if let Some(metrics) = &self.metrics {
            metrics.rounds_total.inc();
            metrics.fresh_interactions_total.add(fresh_interactions as u64);
            metrics.instances_trained_total.add(instances_trained as u64);
            metrics.table_growth_rows_total.add(grown_rows as u64);
            metrics.train_micros.record((train_seconds * 1e6) as u64);
            metrics.publish_micros.record((publish_seconds * 1e6) as u64);
            metrics.round_micros.record(round_started.elapsed().as_micros() as u64);
            if published {
                metrics.publishes_total.inc();
                metrics.serving_staleness_seconds.set(0);
            }
        }
        RoundReport { round, version, fresh_interactions, instances_trained, train_seconds, publish_seconds, epochs }
    }
}

/// Freezes a model snapshot into a named, sharded serving snapshot. Takes
/// the snapshot by value: it is already an owned copy, so publishing must
/// not memcpy the embedding tables a second time.
fn freeze(model: HamModel, shards: usize, quantize: bool, round: u64) -> ServingModel {
    let serving = ServingModel::from_scorer(&format!("ham-online-r{round}"), Arc::new(model), shards.max(1))
        .expect("HAM models always expose a linear head");
    if quantize {
        serving.with_quantized_catalog()
    } else {
        serving
    }
}

/// The sampler seed of a round: depends on the master seed and the round
/// index only, so replaying the stream reproduces every shuffle and
/// negative draw.
fn round_seed(seed: u64, round: u64) -> u64 {
    seed ^ 0x0C0F_FEE0_2718_2818 ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}
