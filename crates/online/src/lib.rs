//! # ham-online
//!
//! The incremental training loop that closes **train → publish → serve**
//! inside one process.
//!
//! The pieces existed separately: the batched trainer (`ham-core`) makes a
//! retrain cheap, and the registry hot-swap (`ham-serve`) makes publishing
//! free of traffic pauses — but nothing connected them, and a *full* retrain
//! per round still costs time proportional to the whole interaction log.
//! [`OnlineTrainer`] connects them and makes each round cost proportional to
//! the **fresh** data only:
//!
//! ```text
//!        ┌──────────────────────────────────────────────────────┐
//!        │                     OnlineTrainer                    │
//!        │                                                      │
//!  ingest│  AppendableDataset ──delta_view──▶ BatchSampler      │
//!  ──────┼─▶ (watermarked log)               ::over_delta       │
//!        │        ▲                              │ fresh        │
//!        │        │ mark_trained                 ▼ windows      │
//!        │        └────────────────── TrainerState::train_round │
//!        │                            (warm Adam moments,       │
//!        │                             grown embedding rows)    │
//!        │                                      │ snapshot      │
//!        └──────────────────────────────────────┼───────────────┘
//!                                               ▼ publish
//!          RecServer ◀──versioned Arc──  ModelRegistry
//!          (keeps serving v_n while v_{n+1} swaps in)
//! ```
//!
//! Per [`OnlineTrainer::run_round`]:
//!
//! 1. the embedding tables and Adam moments **grow row-wise** for any users
//!    or items first seen since the last round (deterministic per-row init),
//! 2. [`BatchSampler::over_delta`] packs mini-batches from exactly the
//!    sliding windows the watermark has not covered — negatives drawn
//!    against each user's full history,
//! 3. [`TrainerState::train_round`] runs the PR 4 chunked GEMM/tape gradient
//!    pipeline for the configured epochs, warm-starting from the previous
//!    round's Adam moments with **per-row bias correction** (a cold row
//!    first touched at global step 10 000 gets the same damped first update
//!    a row touched at step 1 gets),
//! 4. the updated parameters are frozen into a
//!    [`ServingModel`](ham_serve::ServingModel), **shadow-gated** against
//!    the currently served snapshot on a held-out slice of the fresh data
//!    (see [`PublishGate`] — a candidate that regresses past the tolerance
//!    never reaches the registry), and published through the
//!    [`ModelRegistry`] with capped-backoff retries — a live
//!    [`RecServer`](ham_serve::RecServer) on the same registry keeps
//!    answering throughout; in-flight requests finish on the snapshot they
//!    started with, and [`ModelRegistry::rollback_to`] can republish any
//!    archived version if a published model misbehaves in production.
//!
//! ## Determinism contract
//!
//! The trained parameters after any round are a pure function of the
//! (initial data, append schedule, round schedule, seed): replaying the same
//! stream from scratch — or resuming from an [`OnlineCheckpoint`] in a
//! fresh process — reproduces them bit for bit. Pinned by the tests in
//! `tests/online_loop.rs`.
//!
//! ## Quickstart
//!
//! ```
//! use ham_core::{HamConfig, HamVariant, TrainConfig};
//! use ham_data::SequenceDataset;
//! use ham_online::{OnlineConfig, OnlineTrainer};
//! use ham_serve::{RecServer, RecommendRequest, ServerConfig};
//!
//! let initial = SequenceDataset::new("toy", vec![(0..10).collect(); 6], 12);
//! let config = OnlineConfig {
//!     model: HamConfig::for_variant(HamVariant::HamM).with_dimensions(8, 4, 2, 2, 1),
//!     train: TrainConfig { epochs: 1, batch_size: 16, ..TrainConfig::default() },
//!     shards: 2,
//!     quantize_serving: false,
//!     ivf: None,
//!     seed: 7,
//!     gate: ham_online::PublishGate::default(),
//! };
//! let mut trainer = OnlineTrainer::bootstrap(&initial, config);
//! let server = RecServer::start(trainer.registry(), ServerConfig::default());
//!
//! // fresh traffic arrives while version 1 serves...
//! trainer.ingest(0, 5);
//! trainer.ingest(0, 9);
//! let report = trainer.run_round();
//! assert_eq!(report.version, 2);
//! let response = server.submit(RecommendRequest::new(0, vec![5, 9], 3)).unwrap();
//! assert_eq!(response.model_version, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ham_core::{HamConfig, HamModel, TrainConfig, TrainerState};
use ham_data::append::AppendableDataset;
use ham_data::batch::BatchSampler;
use ham_data::dataset::{ItemId, SequenceDataset, UserId};
use ham_faults::FaultInjector;
use ham_serve::{IvfConfig, ModelRegistry, RecommendRequest, ServingModel};
use ham_telemetry::{Counter, Gauge, Histogram, Telemetry};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of the online loop.
#[derive(Debug, Clone, Copy)]
pub struct OnlineConfig {
    /// Model hyper-parameters (fixed across rounds).
    pub model: HamConfig,
    /// Training hyper-parameters; `epochs` is the epoch count **per round**
    /// (over the fresh windows only, except the bootstrap round which covers
    /// the full initial history).
    pub train: TrainConfig,
    /// Shard count of the published serving snapshots.
    pub shards: usize,
    /// Freeze an int8 panel next to every published shard and serve through
    /// the quantized pre-selection + exact re-rank path (¼ of the
    /// candidate-matrix traffic per request; results stay bit-identical to
    /// the exact path under the serving layer's recall guardrail).
    pub quantize_serving: bool,
    /// Build an IVF cluster index over every published snapshot's catalogue
    /// (rebuilt at each publish from the fresh embedding rows) and serve
    /// through cluster-routed approximate retrieval. `None` falls back to
    /// the environment (`HAM_RETRIEVAL=ivf` / `HAM_IVF_NPROBE`), which the
    /// serving layer reads when the snapshot is frozen; the explicit config
    /// wins over the environment when both are set.
    pub ivf: Option<IvfConfig>,
    /// Master seed: model init, growth rows and every round's shuffle /
    /// negative stream derive from it deterministically.
    pub seed: u64,
    /// Publish gating: shadow evaluation of every candidate snapshot plus
    /// retry/backoff behaviour of the registry swap.
    pub gate: PublishGate,
}

/// How candidate snapshots are gated before they reach the registry, and
/// how a failing registry swap is retried.
///
/// Before publishing, the trainer **shadow-evaluates** the candidate against
/// the currently served model on a held-out probe set built from the
/// freshest interaction per user (the last item of each fresh sequence,
/// predicted from everything before it). A candidate that scores markedly
/// worse than the live model — beyond [`Self::tolerance`] — is rejected:
/// the round's training is kept (the next round trains on top of it), but
/// serving stays on the healthy snapshot. Probes are restricted to users
/// and items the **live** model already knows, so both models answer every
/// probe and the comparison is apples-to-apples.
#[derive(Debug, Clone, Copy)]
pub struct PublishGate {
    /// Shadow-evaluate candidates before publishing (`true` by default).
    /// With `false`, every trained round publishes unconditionally (the
    /// pre-gate behaviour).
    pub shadow_eval: bool,
    /// Top-k cutoff of the shadow evaluation's hit metric.
    pub probe_k: usize,
    /// Minimum probe count for the gate to act; with fewer fresh probes the
    /// comparison is noise and the candidate publishes ungated.
    pub min_probes: usize,
    /// Maximum tolerated regression, as a fraction of the probe count:
    /// reject when `(live_hits - candidate_hits) / probes > tolerance`.
    pub tolerance: f64,
    /// Registry-swap retry budget (the swap itself is infallible today, but
    /// the fault injector exercises transient publish failures and real
    /// transports will too).
    pub max_publish_retries: u32,
    /// First retry backoff; doubled per retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
}

impl Default for PublishGate {
    fn default() -> Self {
        Self {
            shadow_eval: true,
            probe_k: 10,
            min_probes: 8,
            tolerance: 0.10,
            max_publish_retries: 3,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(50),
        }
    }
}

/// What the shadow evaluation of one round's candidate snapshot measured.
#[derive(Debug, Clone, Copy)]
pub struct ShadowEval {
    /// Held-out probes both models were scored on.
    pub probes: usize,
    /// Probes whose target the **candidate** ranked in its top-`probe_k`.
    pub candidate_hits: usize,
    /// Probes whose target the **live** model ranked in its top-`probe_k`.
    pub live_hits: usize,
}

/// What one incremental round did.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// Round index (the bootstrap round is 1).
    pub round: u64,
    /// Registry version serving this round's snapshot (unchanged if the
    /// round had nothing to train and skipped publishing).
    pub version: u64,
    /// Interactions appended since the previous round.
    pub fresh_interactions: usize,
    /// Sliding-window instances trained (per epoch).
    pub instances_trained: usize,
    /// Wall-clock seconds spent in gradient/optimizer work.
    pub train_seconds: f64,
    /// Wall-clock seconds spent freezing + publishing the snapshot (the
    /// registry swap itself is nanoseconds; this is dominated by sharding
    /// the candidate matrix).
    pub publish_seconds: f64,
    /// Whether this round's snapshot reached the registry.
    pub published: bool,
    /// Whether the shadow gate rejected the candidate (serving stayed on
    /// the previous version; training is kept).
    pub publish_rejected: bool,
    /// Registry-swap attempts that failed transiently and were retried.
    pub publish_retries: u32,
    /// Whether the swap still failed after exhausting
    /// [`PublishGate::max_publish_retries`] (serving stayed on the previous
    /// version; the next trained round will try again with newer weights).
    pub publish_failed: bool,
    /// The shadow evaluation, when one ran this round.
    pub shadow: Option<ShadowEval>,
    /// Per-epoch loss/throughput statistics of the round.
    pub epochs: Vec<ham_core::EpochStats>,
}

/// Everything needed to resume the loop in a fresh process: the model
/// parameters, the optimizer moments (with per-row step counts), the
/// watermarked interaction log and the round counter.
#[derive(Debug, Clone)]
pub struct OnlineCheckpoint {
    /// The model parameters at checkpoint time.
    pub model: HamModel,
    /// The warm Adam state.
    pub adam: ham_autograd::AdamState,
    /// The optimizer configuration the moments were accumulated under
    /// (restoring with a different scheme would reinterpret the warm
    /// moments and silently break the bit-identical-resume contract).
    pub adam_config: ham_autograd::AdamConfig,
    /// The interaction log with its per-user trained watermarks.
    pub data: AppendableDataset,
    /// Completed round count.
    pub round: u64,
}

/// The loop's metric handles, resolved once from a [`Telemetry`] registry.
/// `None` when telemetry is disabled — the loop then records nothing.
struct OnlineMetrics {
    round_micros: Histogram,
    train_micros: Histogram,
    publish_micros: Histogram,
    rounds_total: Counter,
    fresh_interactions_total: Counter,
    instances_trained_total: Counter,
    table_growth_rows_total: Counter,
    publishes_total: Counter,
    publish_rejected_total: Counter,
    publish_retries_total: Counter,
    publish_failed_total: Counter,
    serving_staleness_seconds: Gauge,
}

impl OnlineMetrics {
    fn resolve(telemetry: &Telemetry) -> Option<Self> {
        let registry = telemetry.registry()?;
        Some(Self {
            round_micros: registry.histogram("online_round_micros"),
            train_micros: registry.histogram("online_train_micros"),
            publish_micros: registry.histogram("online_publish_micros"),
            rounds_total: registry.counter("online_rounds_total"),
            fresh_interactions_total: registry.counter("online_fresh_interactions_total"),
            instances_trained_total: registry.counter("online_instances_trained_total"),
            table_growth_rows_total: registry.counter("online_table_growth_rows_total"),
            publishes_total: registry.counter("online_publishes_total"),
            publish_rejected_total: registry.counter("online_publish_rejected_total"),
            publish_retries_total: registry.counter("online_publish_retries_total"),
            publish_failed_total: registry.counter("online_publish_failed_total"),
            serving_staleness_seconds: registry.gauge("online_serving_staleness_seconds"),
        })
    }
}

/// The owner of the train→publish→serve loop. See the module docs.
pub struct OnlineTrainer {
    config: OnlineConfig,
    data: AppendableDataset,
    state: TrainerState,
    registry: Arc<ModelRegistry>,
    round: u64,
    telemetry: Telemetry,
    metrics: Option<OnlineMetrics>,
    faults: FaultInjector,
    last_publish: Option<Instant>,
    /// `(users, items)` the **currently served** snapshot was frozen with —
    /// the bound the shadow gate's probes must respect (a probe outside it
    /// would panic the live model's query builder instead of comparing).
    live_dims: (usize, usize),
}

impl OnlineTrainer {
    /// Trains the bootstrap round on `initial`'s full history, publishes the
    /// resulting model as version 1 and returns the running loop. Start a
    /// [`RecServer`](ham_serve::RecServer) on [`Self::registry`] to serve.
    ///
    /// # Panics
    /// Panics if `initial` has no users or items, or the configuration is
    /// invalid.
    pub fn bootstrap(initial: &SequenceDataset, config: OnlineConfig) -> Self {
        Self::bootstrap_instrumented(initial, config, Telemetry::from_env(), FaultInjector::from_env())
    }

    /// [`Self::bootstrap`] with an explicit [`Telemetry`] handle. With an
    /// enabled handle every round records `online_*` metrics into its
    /// registry (the bootstrap round included); a disabled handle makes
    /// recording a no-op. Fault injection follows the environment
    /// (`HAM_FAULTS`).
    pub fn bootstrap_with_telemetry(initial: &SequenceDataset, config: OnlineConfig, telemetry: Telemetry) -> Self {
        Self::bootstrap_instrumented(initial, config, telemetry, FaultInjector::from_env())
    }

    /// [`Self::bootstrap_with_telemetry`] with an explicit [`FaultInjector`]
    /// — the full-control constructor used by the chaos suite to inject
    /// deterministic publish failures and snapshot corruption.
    pub fn bootstrap_instrumented(
        initial: &SequenceDataset,
        config: OnlineConfig,
        telemetry: Telemetry,
        faults: FaultInjector,
    ) -> Self {
        let data = AppendableDataset::from_dataset(initial);
        let state = TrainerState::new(
            data.num_users().max(1),
            data.num_items().max(1),
            &config.model,
            &config.train,
            config.seed,
        );
        let metrics = OnlineMetrics::resolve(&telemetry);
        let mut trainer = Self {
            config,
            data,
            state,
            // placeholder registry; the bootstrap round's publish replaces v1
            registry: Arc::new(ModelRegistry::new(ServingModel::from_parts(
                "bootstrap-empty",
                &ham_tensor::Matrix::zeros(1, 1),
                1,
                |_, _| vec![0.0],
            ))),
            round: 0,
            telemetry,
            metrics,
            faults,
            last_publish: None,
            live_dims: (1, 1),
        };
        trainer.run_round();
        trainer
    }

    /// Resumes a checkpointed loop: training on is bit-identical to the
    /// trainer that exported the checkpoint (given the same `config`).
    pub fn restore(checkpoint: OnlineCheckpoint, config: OnlineConfig) -> Self {
        Self::restore_with_telemetry(checkpoint, config, Telemetry::from_env())
    }

    /// [`Self::restore`] with an explicit [`Telemetry`] handle.
    pub fn restore_with_telemetry(checkpoint: OnlineCheckpoint, config: OnlineConfig, telemetry: Telemetry) -> Self {
        let state = TrainerState::from_model(
            &checkpoint.model,
            &config.train,
            checkpoint.adam_config,
            checkpoint.adam,
            config.seed,
        );
        let live_dims = (state.num_users(), state.num_items());
        let serving = freeze(checkpoint.model, config.shards, config.quantize_serving, config.ivf, checkpoint.round);
        let metrics = OnlineMetrics::resolve(&telemetry);
        Self {
            config,
            data: checkpoint.data,
            state,
            registry: Arc::new(ModelRegistry::new(serving)),
            round: checkpoint.round,
            telemetry,
            metrics,
            faults: FaultInjector::from_env(),
            last_publish: None,
            live_dims,
        }
    }

    /// Exports the loop's full state for [`Self::restore`].
    pub fn checkpoint(&self) -> OnlineCheckpoint {
        OnlineCheckpoint {
            model: self.state.snapshot(),
            adam: self.state.adam_state(),
            adam_config: self.state.adam_config(),
            data: self.data.clone(),
            round: self.round,
        }
    }

    /// The registry the loop publishes into (share it with a `RecServer`).
    pub fn registry(&self) -> Arc<ModelRegistry> {
        Arc::clone(&self.registry)
    }

    /// The telemetry handle the loop records into (disabled unless the loop
    /// was built with an enabled handle or `HAM_TELEMETRY` is set).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Updates the `online_serving_staleness_seconds` gauge to the seconds
    /// elapsed since the last publish and returns that value. The gauge only
    /// moves when the loop publishes or someone calls this — call it from
    /// whatever cadence scrapes the registry. Returns 0 before any publish.
    pub fn refresh_staleness(&self) -> u64 {
        let staleness = self.last_publish.map_or(0, |at| at.elapsed().as_secs());
        if let Some(metrics) = &self.metrics {
            metrics.serving_staleness_seconds.set(staleness as i64);
        }
        staleness
    }

    /// Appends one fresh interaction. Unknown users and items are accepted;
    /// the next round grows the embedding tables to cover them.
    pub fn ingest(&mut self, user: UserId, item: ItemId) {
        self.data.append(user, item);
    }

    /// Interactions ingested since the last completed round.
    pub fn pending_interactions(&self) -> usize {
        self.data.fresh_interactions()
    }

    /// Completed rounds (bootstrap included).
    pub fn rounds(&self) -> u64 {
        self.round
    }

    /// The interaction log backing the loop.
    pub fn data(&self) -> &AppendableDataset {
        &self.data
    }

    /// A snapshot of the current (possibly not-yet-published) parameters.
    pub fn model(&self) -> HamModel {
        self.state.snapshot()
    }

    /// Runs one incremental round: grow → train the fresh windows →
    /// shadow-gate → publish. With nothing fresh to train the round is a
    /// no-op (no publish, version unchanged). See the module docs for the
    /// loop and [`PublishGate`] for the gate.
    pub fn run_round(&mut self) -> RoundReport {
        let fresh_interactions = self.data.fresh_interactions();
        let round = self.round + 1;
        let round_started = Instant::now();
        let train_started = Instant::now();
        let rows_before = self.state.num_users() + self.state.num_items();
        self.state.grow_to(self.data.num_users().max(1), self.data.num_items().max(1));
        let grown_rows = (self.state.num_users() + self.state.num_items()).saturating_sub(rows_before);
        let delta = self.data.delta_view(self.config.model.n_h, self.config.model.n_p);
        // Held-out probes for the shadow gate: each fresh user's latest
        // interaction, predicted from everything before it, restricted to
        // the users/items the *live* snapshot knows so both models answer
        // every probe. Built before training so the candidate cannot be
        // graded on windows it just memorised in this very round — the
        // probe target is still unseen by the *previous* rounds' weights
        // the live model serves.
        let probes = if self.config.gate.shadow_eval && round > 1 {
            build_probes(&delta, self.live_dims.0, self.live_dims.1)
        } else {
            Vec::new()
        };
        let (instances_trained, epochs) = if delta.is_empty() {
            (0, Vec::new())
        } else {
            let mut sampler = BatchSampler::over_delta(
                &delta,
                self.data.num_items().max(1),
                self.config.model.n_h,
                self.config.model.n_p,
                self.config.model.n_l,
                self.config.train.batch_size.max(1),
                round_seed(self.config.seed, round),
            );
            let epochs = self.state.train_round(&mut sampler, self.config.train.epochs.max(1));
            self.data.mark_trained();
            (sampler.num_instances(), epochs)
        };
        let train_seconds = train_started.elapsed().as_secs_f64();

        // Publish: freeze the updated parameters, shadow-gate the candidate
        // against the live snapshot and hot-swap the registry (with retries
        // — the injector exercises transient failures). Round 1 (bootstrap)
        // replaces the placeholder model installed by `bootstrap`, so the
        // first *served* version is already trained; it has no live model
        // to gate against.
        let publish_started = Instant::now();
        let gate = self.config.gate;
        let mut version = self.registry.version();
        let mut published = false;
        let mut publish_rejected = false;
        let mut publish_retries = 0u32;
        let mut publish_failed = false;
        let mut shadow = None;
        if instances_trained > 0 || round == 1 {
            let snapshot = self.state.snapshot();
            let serving = if self.faults.corrupt_snapshot(round) {
                freeze_corrupted(snapshot, self.config.shards, self.config.quantize_serving, self.config.ivf, round)
            } else {
                freeze(snapshot, self.config.shards, self.config.quantize_serving, self.config.ivf, round)
            };
            let accepted = if gate.shadow_eval && round > 1 && probes.len() >= gate.min_probes.max(1) {
                let eval = shadow_evaluate(&self.registry.current().model, &serving, &probes, gate.probe_k);
                let regression = eval.live_hits.saturating_sub(eval.candidate_hits) as f64;
                let rejected = regression > gate.tolerance.max(0.0) * eval.probes as f64;
                shadow = Some(eval);
                !rejected
            } else {
                true
            };
            if accepted {
                let mut serving = Some(serving);
                loop {
                    if !self.faults.fail_publish() {
                        // ham-lint: allow(panic, "the Option is taken exactly once — every loop path below breaks or retries before re-taking")
                        let serving = serving.take().expect("publish attempted twice");
                        version = if round == 1 {
                            // keep version 1 == first trained model
                            self.registry = Arc::new(ModelRegistry::new(serving));
                            self.registry.version()
                        } else {
                            self.registry.publish(serving)
                        };
                        published = true;
                        self.last_publish = Some(Instant::now());
                        self.live_dims = (self.state.num_users(), self.state.num_items());
                        break;
                    }
                    if publish_retries >= gate.max_publish_retries {
                        // Out of budget: serving stays on the previous
                        // version; the next trained round retries with
                        // newer weights. Nothing is stranded — the
                        // registry swap is all-or-nothing.
                        publish_failed = true;
                        break;
                    }
                    let backoff = gate
                        .backoff_base
                        .saturating_mul(1u32 << publish_retries.min(16))
                        .min(gate.backoff_cap.max(gate.backoff_base));
                    std::thread::sleep(backoff);
                    publish_retries += 1;
                }
            } else {
                publish_rejected = true;
            }
        }
        let publish_seconds = publish_started.elapsed().as_secs_f64();
        self.round = round;
        if let Some(metrics) = &self.metrics {
            metrics.rounds_total.inc();
            metrics.fresh_interactions_total.add(fresh_interactions as u64);
            metrics.instances_trained_total.add(instances_trained as u64);
            metrics.table_growth_rows_total.add(grown_rows as u64);
            metrics.train_micros.record((train_seconds * 1e6) as u64);
            metrics.publish_micros.record((publish_seconds * 1e6) as u64);
            metrics.round_micros.record(round_started.elapsed().as_micros() as u64);
            metrics.publish_retries_total.add(publish_retries as u64);
            if publish_rejected {
                metrics.publish_rejected_total.inc();
            }
            if publish_failed {
                metrics.publish_failed_total.inc();
            }
            if published {
                metrics.publishes_total.inc();
                metrics.serving_staleness_seconds.set(0);
            }
        }
        RoundReport {
            round,
            version,
            fresh_interactions,
            instances_trained,
            train_seconds,
            publish_seconds,
            published,
            publish_rejected,
            publish_retries,
            publish_failed,
            shadow,
            epochs,
        }
    }
}

/// Builds the shadow gate's probe set from a round's fresh delta: one probe
/// per affected user — the last item of the user's full sequence as the
/// target, everything before it as the history — restricted to users and
/// items within `(known_users, known_items)` (the live snapshot's tables)
/// so both sides of the comparison can answer.
fn build_probes(
    delta: &ham_data::append::DeltaView,
    known_users: usize,
    known_items: usize,
) -> Vec<(UserId, Vec<ItemId>, ItemId)> {
    delta
        .users
        .iter()
        .zip(&delta.seen)
        .filter_map(|(&user, seen)| {
            let (&target, history) = seen.split_last()?;
            let answerable = user < known_users
                && target < known_items
                && !history.is_empty()
                && history.iter().all(|&item| item < known_items);
            answerable.then(|| (user, history.to_vec(), target))
        })
        .collect()
}

/// Scores `live` and `candidate` on the same probes: a hit is the probe's
/// target ranked inside the top-`k`. Seen-item masking is off — a target
/// repeating an earlier interaction must stay rankable.
fn shadow_evaluate(
    live: &ServingModel,
    candidate: &ServingModel,
    probes: &[(UserId, Vec<ItemId>, ItemId)],
    k: usize,
) -> ShadowEval {
    let mut candidate_hits = 0usize;
    let mut live_hits = 0usize;
    for (user, history, target) in probes {
        let mut request = RecommendRequest::new(*user, history.clone(), k.max(1));
        request.exclude_seen = false;
        if live.recommend(&request).iter().any(|scored| scored.item == *target) {
            live_hits += 1;
        }
        if candidate.recommend(&request).iter().any(|scored| scored.item == *target) {
            candidate_hits += 1;
        }
    }
    ShadowEval { probes: probes.len(), candidate_hits, live_hits }
}

/// Freezes a model snapshot into a named, sharded serving snapshot. Takes
/// the snapshot by value: it is already an owned copy, so publishing must
/// not memcpy the embedding tables a second time.
fn freeze(model: HamModel, shards: usize, quantize: bool, ivf: Option<IvfConfig>, round: u64) -> ServingModel {
    let serving = ServingModel::from_scorer(&format!("ham-online-r{round}"), Arc::new(model), shards.max(1))
        // ham-lint: allow(panic, "HamModel::linear_head is total — every HAM model exposes its output embeddings")
        .expect("HAM models always expose a linear head");
    let serving = if quantize { serving.with_quantized_catalog() } else { serving };
    match ivf {
        Some(config) => serving.with_cluster_index(&config),
        None => serving,
    }
}

/// Freezes a deliberately **corrupted** snapshot: the query vectors are
/// negated, so the candidate ranks its catalogue in reverse and regresses
/// hard on any probe set. Only reachable through the fault injector's
/// `snapshot_corrupt=r<round>` rule — it exists so the chaos suite can
/// prove the shadow gate keeps a regressing candidate out of the registry.
fn freeze_corrupted(
    model: HamModel,
    shards: usize,
    quantize: bool,
    ivf: Option<IvfConfig>,
    round: u64,
) -> ServingModel {
    let candidates = model.candidate_item_embeddings().clone();
    let model = Arc::new(model);
    let serving = ServingModel::from_parts(
        &format!("ham-online-r{round}-corrupted"),
        &candidates,
        shards.max(1),
        move |user, history| model.query_vector(user, history).iter().map(|q| -q).collect(),
    );
    let serving = if quantize { serving.with_quantized_catalog() } else { serving };
    match ivf {
        Some(config) => serving.with_cluster_index(&config),
        None => serving,
    }
}

/// The sampler seed of a round: depends on the master seed and the round
/// index only, so replaying the stream reproduces every shuffle and
/// negative draw.
fn round_seed(seed: u64, round: u64) -> u64 {
    seed ^ 0x0C0F_FEE0_2718_2818 ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}
