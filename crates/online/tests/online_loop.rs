//! End-to-end tests of the train → publish → serve loop.

use ham_core::{HamConfig, HamModel, HamVariant, TrainConfig};
use ham_data::synthetic::DatasetProfile;
use ham_data::SequenceDataset;
use ham_online::{OnlineConfig, OnlineTrainer, PublishGate};
use ham_serve::{RecServer, RecommendRequest, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn tiny_config(seed: u64) -> OnlineConfig {
    OnlineConfig {
        model: HamConfig::for_variant(HamVariant::HamM).with_dimensions(8, 4, 2, 2, 1),
        train: TrainConfig { epochs: 2, batch_size: 32, ..TrainConfig::default() },
        shards: 2,
        quantize_serving: false,
        ivf: None,
        seed,
        gate: PublishGate::default(),
    }
}

fn tiny_dataset(seed: u64) -> SequenceDataset {
    DatasetProfile::tiny("online-e2e").generate(seed)
}

/// A ~10% fresh-interaction stream re-using each user's own item vocabulary
/// (so negatives keep existing and the stream looks like real repeat
/// traffic).
fn fresh_stream(data: &SequenceDataset) -> Vec<(usize, usize)> {
    let mut fresh = Vec::new();
    for (user, seq) in data.sequences.iter().enumerate() {
        for t in 0..seq.len().div_ceil(10) {
            fresh.push((user, seq[(t * 7) % seq.len()]));
        }
    }
    fresh
}

fn max_param_diff(a: &HamModel, b: &HamModel) -> f32 {
    [
        (a.user_embeddings(), b.user_embeddings()),
        (a.input_item_embeddings(), b.input_item_embeddings()),
        (a.candidate_item_embeddings(), b.candidate_item_embeddings()),
    ]
    .iter()
    .flat_map(|(x, y)| x.as_slice().iter().zip(y.as_slice()))
    .map(|(p, q)| (p - q).abs())
    .fold(0.0f32, f32::max)
}

/// The acceptance loop: train, serve, append fresh interactions, run one
/// incremental round, and observe the served `model_version` advance while
/// the `RecServer` keeps answering throughout (no pause, no rejection).
#[test]
fn incremental_round_advances_served_version_without_pausing() {
    let initial = tiny_dataset(11);
    let mut trainer = OnlineTrainer::bootstrap(&initial, tiny_config(42));
    assert_eq!(trainer.rounds(), 1);
    let server = Arc::new(RecServer::start(trainer.registry(), ServerConfig::default()));

    // a client hammers the server for the whole duration of the round
    let stop = Arc::new(AtomicBool::new(false));
    let client = {
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        let histories: Vec<Vec<usize>> = initial.sequences.clone();
        std::thread::spawn(move || {
            let mut served = 0usize;
            let mut versions = Vec::new();
            let mut user = 0usize;
            while !stop.load(Ordering::SeqCst) {
                let request =
                    RecommendRequest::new(user % histories.len(), histories[user % histories.len()].clone(), 5);
                match server.submit(request) {
                    Ok(response) => {
                        assert_eq!(response.items.len(), 5, "every served response is a full ranking");
                        if versions.last() != Some(&response.model_version) {
                            versions.push(response.model_version);
                        }
                        served += 1;
                    }
                    Err(error) => panic!("the loop must never pause or shed this client: {error}"),
                }
                user += 1;
            }
            (served, versions)
        })
    };

    // fresh traffic arrives; one incremental round retrains + publishes
    let before = server.model_version();
    assert_eq!(before, 1);
    for (user, item) in fresh_stream(&initial) {
        trainer.ingest(user, item);
    }
    let report = trainer.run_round();
    assert_eq!(report.round, 2);
    assert_eq!(report.version, 2, "the incremental round must publish a new version");
    assert!(report.instances_trained > 0, "fresh windows must be trained");
    assert!(report.fresh_interactions > 0);

    // the served version advanced without restarting the server
    let after = server.submit(RecommendRequest::new(0, initial.sequences[0].clone(), 5)).expect("still serving");
    assert_eq!(after.model_version, 2);

    stop.store(true, Ordering::SeqCst);
    let (served, versions) = client.join().expect("client thread panicked");
    assert!(served > 0, "the client must have been served during the swap");
    assert!(versions.iter().all(|v| [1, 2].contains(v)), "only published versions may be served, got {versions:?}");
}

/// Warm-start correctness: a trainer restored from a checkpoint (fresh
/// process simulation — model + Adam moments + watermarked log rebuilt from
/// exported state) continues the stream to parameters within 1e-5 of the
/// trainer that never stopped. With identically seeded warm starts the match
/// is in fact bit-exact.
#[test]
fn restored_trainer_matches_the_uninterrupted_one() {
    let initial = tiny_dataset(7);
    let config = tiny_config(99);

    let mut continuous = OnlineTrainer::bootstrap(&initial, config);
    for (user, item) in fresh_stream(&initial) {
        continuous.ingest(user, item);
    }
    let checkpoint = continuous.checkpoint();
    let round_a = continuous.run_round();

    let mut restored = OnlineTrainer::restore(checkpoint, config);
    let round_b = restored.run_round();

    assert_eq!(round_a.round, round_b.round);
    assert_eq!(round_a.instances_trained, round_b.instances_trained);
    let diff = max_param_diff(&continuous.model(), &restored.model());
    assert!(diff <= 1e-5, "restored round diverged from the uninterrupted one: max diff {diff}");
    assert_eq!(diff, 0.0, "identically seeded warm starts are bit-exact");
}

/// From-scratch reference on the same cumulative stream: replaying the
/// identical ingest/round schedule from a fresh bootstrap reproduces the
/// incremental trainer's parameters exactly.
#[test]
fn replayed_stream_reproduces_the_incremental_parameters() {
    let initial = tiny_dataset(5);
    let config = tiny_config(1234);
    let fresh = fresh_stream(&initial);

    let run = || {
        let mut trainer = OnlineTrainer::bootstrap(&initial, config);
        for &(user, item) in &fresh[..fresh.len() / 2] {
            trainer.ingest(user, item);
        }
        trainer.run_round();
        for &(user, item) in &fresh[fresh.len() / 2..] {
            trainer.ingest(user, item);
        }
        trainer.run_round();
        trainer
    };
    let a = run();
    let b = run();
    assert_eq!(a.rounds(), 3);
    assert_eq!(max_param_diff(&a.model(), &b.model()), 0.0, "the stream fully determines the parameters");
}

/// Unseen users and items grow the embedding tables mid-stream and become
/// servable after the next round.
#[test]
fn new_users_and_items_grow_and_get_served() {
    let initial = tiny_dataset(3);
    let mut trainer = OnlineTrainer::bootstrap(&initial, tiny_config(8));
    let server = RecServer::start(trainer.registry(), ServerConfig::default());

    let new_user = initial.num_users();
    let first_new_item = initial.num_items;
    // the new user interacts with a mix of catalogue and brand-new items
    for t in 0..8 {
        let item = if t % 2 == 0 { first_new_item + t / 2 } else { t };
        trainer.ingest(new_user, item);
    }
    let report = trainer.run_round();
    assert!(report.instances_trained > 0, "the new user's windows must train");

    let model = trainer.model();
    assert_eq!(model.num_users(), new_user + 1);
    assert_eq!(model.num_items(), first_new_item + 4);

    // the served snapshot knows the new user and ranks the grown catalogue
    let history: Vec<usize> = (0..4).map(|i| first_new_item + i).collect();
    let response = server.submit(RecommendRequest::new(new_user, history, 10)).expect("served");
    assert_eq!(response.model_version, 2);
    assert_eq!(response.items.len(), 10);
    assert!(response.items.iter().all(|s| s.score.is_finite()));
}

/// `quantize_serving` publishes int8-quantized snapshots at every round —
/// bootstrap and incremental alike — and the served results stay
/// bit-identical to an unquantized twin trained on the same stream (the
/// quantized path re-ranks its candidates through the exact f32 kernel).
#[test]
fn quantized_publishing_serves_the_same_results() {
    let initial = tiny_dataset(21);
    let exact_config = tiny_config(77);
    let quant_config = OnlineConfig { quantize_serving: true, ..exact_config };

    let run = |config: OnlineConfig| {
        let mut trainer = OnlineTrainer::bootstrap(&initial, config);
        for (user, item) in fresh_stream(&initial) {
            trainer.ingest(user, item);
        }
        trainer.run_round();
        trainer
    };
    let exact = run(exact_config);
    let quantized = run(quant_config);

    assert!(!exact.registry().current().model.is_quantized());
    assert!(quantized.registry().current().model.is_quantized(), "every published snapshot must be quantized");
    assert_eq!(quantized.registry().version(), 2, "the incremental round still publishes");

    let exact_server = RecServer::start(exact.registry(), ServerConfig::default());
    let quant_server = RecServer::start(quantized.registry(), ServerConfig::default());
    for (user, seq) in initial.sequences.iter().enumerate() {
        let want = exact_server.submit(RecommendRequest::new(user, seq.clone(), 5)).expect("exact serving");
        let got = quant_server.submit(RecommendRequest::new(user, seq.clone(), 5)).expect("quantized serving");
        assert_eq!(got.items, want.items, "user {user}: quantized serving must match the exact path bit-for-bit");
    }
}

/// With `ivf` configured, every published snapshot carries a cluster index
/// rebuilt from that round's embedding rows, the rebuild **replays
/// bit-identically** (two trainers fed the same stream serve the same
/// bits), and at `nprobe = all` the clustered snapshots serve bit-identical
/// results to an unclustered twin — the index is a pure regrouping of the
/// published catalogue.
#[test]
fn ivf_publishing_replays_bit_identically_and_matches_exact() {
    let initial = tiny_dataset(33);
    let exact_config = tiny_config(55);
    let ivf_config = OnlineConfig {
        ivf: Some(ham_serve::IvfConfig { clusters: 3, iters: 4, ..ham_serve::IvfConfig::auto() }),
        ..exact_config
    };

    let run = |config: OnlineConfig| {
        let mut trainer = OnlineTrainer::bootstrap(&initial, config);
        for (user, item) in fresh_stream(&initial) {
            trainer.ingest(user, item);
        }
        trainer.run_round();
        trainer
    };
    let exact = run(exact_config);
    let replay_a = run(ivf_config);
    let replay_b = run(ivf_config);

    // Under the CI leg that forces HAM_RETRIEVAL=ivf the "exact" twin is
    // also clustered (at nprobe = all, so still exact) — only assert it is
    // unclustered when the environment leaves serving alone.
    if std::env::var_os("HAM_RETRIEVAL").is_none() {
        assert!(!exact.registry().current().model.is_clustered());
    }
    for trainer in [&replay_a, &replay_b] {
        let published = trainer.registry().current();
        assert!(published.model.is_clustered(), "every published snapshot must carry the rebuilt index");
        assert!(published.model.clusters_probed() > 0);
        assert_eq!(trainer.registry().version(), 2, "the incremental round still publishes");
    }

    for (user, seq) in initial.sequences.iter().enumerate() {
        let request = RecommendRequest::new(user, seq.clone(), 5);
        let want = exact.registry().current().model.recommend(&request);
        let got_a = replay_a.registry().current().model.recommend(&request);
        let got_b = replay_b.registry().current().model.recommend(&request);
        let to_bits =
            |items: &[ham_serve::ScoredItem]| items.iter().map(|s| (s.item, s.score.to_bits())).collect::<Vec<_>>();
        assert_eq!(to_bits(&got_a), to_bits(&got_b), "user {user}: publish-rebuild must replay bit-identically");
        assert_eq!(to_bits(&got_a), to_bits(&want), "user {user}: nprobe=all must match the unclustered twin");
    }
}

/// A round with nothing fresh is a published no-op: version unchanged,
/// nothing trained, the server keeps the old snapshot.
#[test]
fn empty_round_publishes_nothing() {
    let initial = tiny_dataset(13);
    let mut trainer = OnlineTrainer::bootstrap(&initial, tiny_config(6));
    let registry = trainer.registry();
    assert_eq!(registry.version(), 1);
    let report = trainer.run_round();
    assert_eq!(report.instances_trained, 0);
    assert_eq!(report.version, 1, "no fresh data, no publish");
    assert_eq!(registry.version(), 1);
}
