//! Chaos suite of the train → publish → serve loop: deterministic publish
//! failures, snapshot corruption caught by the shadow gate, and rollback.

use ham_core::{HamConfig, HamVariant, TrainConfig};
use ham_data::SequenceDataset;
use ham_faults::FaultInjector;
use ham_online::{OnlineConfig, OnlineTrainer, PublishGate};
use ham_serve::{RecServer, RecommendRequest, ServerConfig};
use ham_telemetry::Telemetry;
use std::time::Duration;

const USERS: usize = 16;
const ITEMS: usize = 48;

/// Every user cycles through a small personal item vocabulary, so repeat
/// interactions are learnable and the shadow gate's probes are meaningful.
fn dataset() -> SequenceDataset {
    let sequences: Vec<Vec<usize>> = (0..USERS).map(|u| (0..12).map(|t| (u * 3 + t % 3) % ITEMS).collect()).collect();
    SequenceDataset::new("chaos-online", sequences, ITEMS)
}

fn config(seed: u64) -> OnlineConfig {
    OnlineConfig {
        model: HamConfig::for_variant(HamVariant::HamM).with_dimensions(8, 4, 2, 2, 1),
        train: TrainConfig { epochs: 2, batch_size: 32, ..TrainConfig::default() },
        shards: 2,
        quantize_serving: false,
        ivf: None,
        seed,
        gate: PublishGate {
            // Half the catalogue as the hit cutoff and zero tolerance: the
            // negated (corrupted) candidate ranks every probe target near
            // the bottom, so any live signal at all rejects it.
            probe_k: ITEMS / 2,
            min_probes: 4,
            tolerance: 0.0,
            ..PublishGate::default()
        },
    }
}

/// One fresh repeat interaction per user (items the user already knows).
fn ingest_fresh(trainer: &mut OnlineTrainer, round_salt: usize) {
    for u in 0..USERS {
        trainer.ingest(u, (u * 3 + round_salt % 3) % ITEMS);
    }
}

/// Transient publish failures are retried with backoff and the round still
/// publishes; the serve side sees a consistent registry throughout.
#[test]
fn transient_publish_failures_are_retried_and_absorbed() {
    let faults = FaultInjector::parse("seed=7;publish_fail=n2").expect("valid spec");
    let mut trainer = OnlineTrainer::bootstrap_instrumented(&dataset(), config(42), Telemetry::disabled(), faults);
    // Bootstrap consumed the two failing draws in its retry loop and then
    // published: the first served version is still the first trained model.
    assert_eq!(trainer.registry().version(), 1);
    let server = RecServer::start(trainer.registry(), ServerConfig::default());
    let response = server.submit(RecommendRequest::new(0, vec![0, 1], 5)).expect("admitted");
    assert_eq!(response.model_version, 1);
    assert_eq!(response.items.len(), 5);

    ingest_fresh(&mut trainer, 1);
    let report = trainer.run_round();
    assert!(report.published, "no failing draws left for round 2");
    assert_eq!(report.publish_retries, 0);
    let response = server.submit(RecommendRequest::new(1, vec![3], 5)).expect("admitted");
    assert_eq!(response.model_version, report.version, "serve follows the published version");
}

/// When the retry budget is exhausted the publish is abandoned cleanly:
/// serving stays on the previous snapshot, nothing is stranded, and the
/// next trained round publishes fresh weights.
#[test]
fn exhausted_publish_retries_fail_cleanly_and_recover_next_round() {
    // Default budget is 3 retries → 4 attempts per round; 5 failing draws
    // sink round 1 entirely and leave one failure for round 2 to retry past.
    let faults = FaultInjector::parse("seed=7;publish_fail=n5").expect("valid spec");
    let mut trainer = OnlineTrainer::bootstrap_instrumented(&dataset(), config(42), Telemetry::disabled(), faults);
    // The bootstrap publish failed: the placeholder registry still serves.
    let server = RecServer::start(trainer.registry(), ServerConfig::default());
    let placeholder = server.submit(RecommendRequest::new(0, vec![], 1)).expect("never stranded");
    assert_eq!(placeholder.model_version, 1, "placeholder version still answers");

    ingest_fresh(&mut trainer, 1);
    let report = trainer.run_round();
    assert!(report.published, "round 2 retries past the one remaining failing draw");
    assert_eq!(report.publish_retries, 1);
    assert!(!report.publish_failed);
    let response = server.submit(RecommendRequest::new(2, vec![6, 7], 5)).expect("admitted");
    assert_eq!(response.model_version, report.version);
    assert_eq!(response.items.len(), 5);
}

/// The report of the failed round itself records the abandonment.
#[test]
fn failed_publish_is_reported_not_hidden() {
    let faults = FaultInjector::parse("seed=7;publish_fail=n4").expect("valid spec");
    let trainer = OnlineTrainer::bootstrap_instrumented(&dataset(), config(42), Telemetry::disabled(), faults);
    // All 4 bootstrap attempts consumed the failing draws: publish failed,
    // but training happened — the next round starts from trained weights.
    assert_eq!(trainer.rounds(), 1);
    assert_eq!(trainer.registry().version(), 1, "placeholder still v1; nothing half-published");
}

/// A corrupted candidate snapshot (injected at round 2) is caught by the
/// shadow gate: it never reaches the registry, serving stays healthy, and
/// the next round publishes normally.
#[test]
fn corrupted_snapshot_is_rejected_by_the_shadow_gate() {
    let faults = FaultInjector::parse("seed=7;snapshot_corrupt=r2").expect("valid spec");
    let mut trainer = OnlineTrainer::bootstrap_instrumented(&dataset(), config(42), Telemetry::disabled(), faults);
    let healthy_version = trainer.registry().version();
    let server = RecServer::start(trainer.registry(), ServerConfig::default());
    let healthy = server.submit(RecommendRequest::new(0, vec![0, 1], 5)).expect("admitted");

    ingest_fresh(&mut trainer, 1);
    let report = trainer.run_round();
    let shadow = report.shadow.expect("round 2 shadow-evaluates");
    assert!(shadow.probes >= 4, "every fresh user contributes a probe");
    assert!(
        shadow.candidate_hits < shadow.live_hits,
        "the negated candidate must regress ({} vs {} hits on {} probes)",
        shadow.candidate_hits,
        shadow.live_hits,
        shadow.probes
    );
    assert!(report.publish_rejected, "the regressing candidate is rejected");
    assert!(!report.published);
    assert_eq!(report.version, healthy_version, "serving stays on the healthy snapshot");
    let still_healthy = server.submit(RecommendRequest::new(0, vec![0, 1], 5)).expect("admitted");
    assert_eq!(still_healthy.model_version, healthy_version);
    assert_eq!(
        still_healthy.items.iter().map(|s| s.item).collect::<Vec<_>>(),
        healthy.items.iter().map(|s| s.item).collect::<Vec<_>>(),
        "the served rankings are untouched by the rejected candidate"
    );

    // Round 3 trains on top (the rejected round's training is kept) and
    // publishes a healthy snapshot.
    ingest_fresh(&mut trainer, 2);
    let next = trainer.run_round();
    assert!(next.published, "the corruption was a one-round injection");
    assert!(!next.publish_rejected);
    assert_eq!(next.version, healthy_version + 1);
}

/// Fault injection perturbs *publishing*, never the trained weights: a run
/// through publish failures and a rejected corrupt snapshot ends bit-
/// identical to an undisturbed twin consuming the same stream.
#[test]
fn faults_never_leak_into_the_trained_weights() {
    let faults = FaultInjector::parse("seed=7;publish_fail=n1;snapshot_corrupt=r2").expect("valid spec");
    let mut chaotic = OnlineTrainer::bootstrap_instrumented(&dataset(), config(42), Telemetry::disabled(), faults);
    let mut clean =
        OnlineTrainer::bootstrap_instrumented(&dataset(), config(42), Telemetry::disabled(), FaultInjector::disabled());
    for round_salt in 1..=3 {
        ingest_fresh(&mut chaotic, round_salt);
        ingest_fresh(&mut clean, round_salt);
        chaotic.run_round();
        clean.run_round();
    }
    let chaotic_model = chaotic.model();
    let clean_model = clean.model();
    assert_eq!(
        chaotic_model.candidate_item_embeddings().as_slice(),
        clean_model.candidate_item_embeddings().as_slice(),
        "trained parameters are a pure function of the stream, faults or not"
    );
}

/// Rollback closes the loop: after a round published, `rollback_to` brings
/// an archived version back under live serve traffic.
#[test]
fn rollback_after_online_publish_restores_the_previous_round() {
    let mut trainer = OnlineTrainer::bootstrap(&dataset(), config(42));
    let registry = trainer.registry();
    let server = RecServer::start(trainer.registry(), ServerConfig::default());
    let request = RecommendRequest::new(3, vec![9, 10], 6);
    let v1 = server.submit(request.clone()).expect("admitted");
    assert_eq!(v1.model_version, 1);

    ingest_fresh(&mut trainer, 1);
    let report = trainer.run_round();
    assert!(report.published);
    let v2 = server.submit(request.clone()).expect("admitted");
    assert_eq!(v2.model_version, report.version);

    let rolled = registry.rollback_to(1).expect("v1 is archived");
    let back = server.submit(request).expect("admitted");
    assert_eq!(back.model_version, rolled);
    assert_eq!(
        back.items.iter().map(|s| (s.item, s.score.to_bits())).collect::<Vec<_>>(),
        v1.items.iter().map(|s| (s.item, s.score.to_bits())).collect::<Vec<_>>(),
        "rollback serves the bootstrap snapshot's exact bits"
    );
}

/// Deadline-bounded serving stays exact under the online loop's snapshots:
/// a generously-deadlined request against a published model answers
/// un-degraded with every shard.
#[test]
fn online_snapshots_serve_exactly_under_deadlines() {
    let trainer = OnlineTrainer::bootstrap(&dataset(), config(42));
    let server = RecServer::start(trainer.registry(), ServerConfig::default());
    let reference = trainer.registry().current();
    for user in 0..USERS {
        let request = RecommendRequest::new(user, vec![user % ITEMS], 5);
        let exact = reference.model.recommend(&request);
        let response = server.submit(request.with_deadline(Duration::from_secs(5))).expect("admitted");
        assert!(!response.degraded);
        assert_eq!(response.shards_answered, 2);
        assert_eq!(
            response.items.iter().map(|s| (s.item, s.score.to_bits())).collect::<Vec<_>>(),
            exact.iter().map(|s| (s.item, s.score.to_bits())).collect::<Vec<_>>(),
            "user {user}"
        );
    }
}
