//! Plain-text table formatting for the experiment binaries, mirroring the
//! layout of the paper's tables (methods as columns, datasets as rows).

use crate::metrics::MetricSet;

/// A table of `method → per-dataset metrics` in the layout of Tables 3–8.
#[derive(Debug, Clone, Default)]
pub struct ResultsTable {
    methods: Vec<String>,
    rows: Vec<(String, Vec<MetricSet>)>,
}

impl ResultsTable {
    /// Creates an empty table with the given method (column) names.
    pub fn new(methods: &[&str]) -> Self {
        Self { methods: methods.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Adds one dataset row; `metrics` must hold one entry per method, in
    /// column order.
    ///
    /// # Panics
    /// Panics if the number of metric sets does not match the method count.
    pub fn add_row(&mut self, dataset: &str, metrics: Vec<MetricSet>) {
        assert_eq!(metrics.len(), self.methods.len(), "ResultsTable: one MetricSet per method required");
        self.rows.push((dataset.to_string(), metrics));
    }

    /// The method (column) names.
    pub fn methods(&self) -> &[String] {
        &self.methods
    }

    /// The dataset rows added so far.
    pub fn rows(&self) -> &[(String, Vec<MetricSet>)] {
        &self.rows
    }

    /// Renders one metric (e.g. `"Recall@10"`) as a fixed-width text table,
    /// marking the best method per row with `*`.
    pub fn render_metric(&self, metric: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("{metric}\n"));
        out.push_str(&format!("{:<10}", "Dataset"));
        for m in &self.methods {
            out.push_str(&format!(" {m:>10}"));
        }
        out.push('\n');
        for (dataset, metrics) in &self.rows {
            out.push_str(&format!("{dataset:<10}"));
            let values: Vec<f64> = metrics.iter().map(|m| m.get(metric)).collect();
            let best = values.iter().cloned().fold(f64::MIN, f64::max);
            for &v in &values {
                let marker = if (v - best).abs() < 1e-12 && values.len() > 1 { "*" } else { " " };
                out.push_str(&format!(" {v:>9.4}{marker}"));
            }
            out.push('\n');
        }
        out
    }

    /// Renders all four reported metrics.
    pub fn render_all(&self) -> String {
        MetricSet::metric_names().iter().map(|m| self.render_metric(m)).collect::<Vec<_>>().join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(recall5: f64) -> MetricSet {
        MetricSet { recall_at_5: recall5, recall_at_10: recall5 * 1.5, ndcg_at_5: recall5 * 0.9, ndcg_at_10: recall5 }
    }

    #[test]
    fn renders_rows_and_marks_the_best_method() {
        let mut table = ResultsTable::new(&["Caser", "HGN", "HAMs_m"]);
        table.add_row("CDs", vec![metric(0.02), metric(0.03), metric(0.04)]);
        let text = table.render_metric("Recall@5");
        assert!(text.contains("CDs"));
        assert!(text.contains("0.0400*"), "best value should be starred:\n{text}");
        assert!(!text.contains("0.0300*"));
        assert_eq!(table.methods().len(), 3);
        assert_eq!(table.rows().len(), 1);
    }

    #[test]
    fn render_all_contains_every_metric_header() {
        let mut table = ResultsTable::new(&["A", "B"]);
        table.add_row("X", vec![metric(0.1), metric(0.2)]);
        let text = table.render_all();
        for name in MetricSet::metric_names() {
            assert!(text.contains(name), "missing section for {name}");
        }
    }

    #[test]
    #[should_panic(expected = "one MetricSet per method")]
    fn mismatched_row_width_panics() {
        let mut table = ResultsTable::new(&["A", "B"]);
        table.add_row("X", vec![metric(0.1)]);
    }
}
