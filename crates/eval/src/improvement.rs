//! Percentage-improvement summaries (the `imp%` columns of Tables 3–8 and the
//! whole of Table 9).

/// Percentage improvement of `ours` over `baseline`
/// (`(ours − baseline) / baseline · 100`). Returns 0.0 when the baseline is 0.
pub fn percent_improvement(ours: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        return 0.0;
    }
    (ours - baseline) / baseline * 100.0
}

/// The `imp%` column of Tables 3–8: the improvement of the best HAM variant
/// over the best non-HAM baseline on one dataset/metric.
pub fn best_vs_best_improvement(ham_values: &[f64], baseline_values: &[f64]) -> f64 {
    let best_ham = ham_values.iter().cloned().fold(f64::MIN, f64::max);
    let best_baseline = baseline_values.iter().cloned().fold(f64::MIN, f64::max);
    if ham_values.is_empty() || baseline_values.is_empty() {
        return 0.0;
    }
    percent_improvement(best_ham, best_baseline)
}

/// The Table 9 aggregation: the mean percentage improvement of one method
/// over another across datasets (each pair `(ours, theirs)` is one dataset).
pub fn mean_improvement(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    pairs.iter().map(|&(ours, theirs)| percent_improvement(ours, theirs)).sum::<f64>() / pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_percentages() {
        assert!((percent_improvement(0.11, 0.10) - 10.0).abs() < 1e-9);
        assert!((percent_improvement(0.09, 0.10) + 10.0).abs() < 1e-9);
        assert_eq!(percent_improvement(0.5, 0.0), 0.0);
    }

    #[test]
    fn best_vs_best_uses_maxima_of_both_groups() {
        let ham = [0.10, 0.12, 0.11];
        let baselines = [0.08, 0.10];
        assert!((best_vs_best_improvement(&ham, &baselines) - 20.0).abs() < 1e-9);
        assert_eq!(best_vs_best_improvement(&[], &baselines), 0.0);
    }

    #[test]
    fn mean_improvement_averages_across_datasets() {
        let pairs = [(0.11, 0.10), (0.22, 0.20), (0.10, 0.10)];
        assert!((mean_improvement(&pairs) - (10.0 + 10.0 + 0.0) / 3.0).abs() < 1e-9);
        assert_eq!(mean_improvement(&[]), 0.0);
    }
}
