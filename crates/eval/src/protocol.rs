//! The evaluation protocol of Section 5.3: for every user with test items,
//! score all items given the user's training(+validation) history, mask the
//! items already seen in that history, rank, and compute Recall/NDCG against
//! the user's test items.
//!
//! Two scoring entry points are provided:
//!
//! * [`evaluate`] — per-user scoring closure `(user, history) -> scores`;
//! * [`evaluate_batch`] — batched scoring closure over a *chunk* of users,
//!   `(users, histories) -> Matrix` with one score row per user, which lets
//!   models answer with one GEMM (`Q·Wᵀ`) instead of a per-item dot loop.
//!
//! Both honor [`EvalConfig::num_threads`]: the evaluated users are split into
//! `num_threads` contiguous chunks. With one chunk the work runs inline on
//! the calling thread (no task submission at all); with more, the chunks run
//! on the process-wide persistent worker pool
//! ([`ham_tensor::pool::global_pool`]) — the caller processes the first chunk
//! itself while the pool's work-stealing workers take the rest, so repeated
//! evaluations (grid searches run thousands) pay zero thread-spawn overhead.
//! Workers never share mutable state — each chunk returns its own ordered
//! result vector and the chunks are concatenated in order — so the report is
//! **bit-identical for every thread count** (only wall-clock time changes).
//!
//! Ranking runs through the fused mask+select path
//! ([`crate::ranking::top_k_excluding`]): seen items are skipped via a
//! reusable per-chunk bitmap during the top-k scan instead of being
//! overwritten with `-inf` in the score buffer, which lets the batched path
//! rank straight out of the shared `Q·Wᵀ` score block.
//!
//! The scoring closures themselves funnel into the tiered kernel layer
//! (`ham_tensor::kernels`): the same evaluation binary hits the explicit
//! AVX2+FMA microkernels on capable hardware and the portable reference
//! loops elsewhere, chosen once per process at runtime — no
//! `-C target-cpu=native` required (force a tier with `HAM_KERNEL_TIER` to
//! compare).

use crate::metrics::MetricSet;
use crate::ranking::top_k_excluding;
use ham_data::split::DataSplit;
use ham_tensor::ops::top_k_indices;
use ham_tensor::pool::global_pool;
use ham_tensor::Matrix;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::time::Instant;

/// Evaluation options.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Use the training + validation items as the scoring history (the
    /// paper's final-evaluation protocol). When `false`, only the training
    /// prefix is used (the protocol for validation-time model selection).
    pub include_validation_in_history: bool,
    /// Mask items that appear in the scoring history so they cannot be
    /// recommended again (the protocol of the HGN / Caser evaluation code).
    pub exclude_history_items: bool,
    /// Number of scoped worker threads for evaluation. Users are split into
    /// this many contiguous chunks, one worker per chunk; `1` (or fewer users
    /// than chunks) runs sequentially on the calling thread. The reported
    /// metrics are identical for every value — this knob only trades
    /// wall-clock time for CPU cores.
    pub num_threads: usize,
    /// Ranking depth kept per user; must be at least 10 for the reported
    /// metrics.
    pub max_rank: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self { include_validation_in_history: true, exclude_history_items: true, num_threads: 1, max_rank: 10 }
    }
}

/// The outcome of evaluating one scorer on one split.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalReport {
    /// Dataset the split came from.
    pub dataset: String,
    /// Name of the experimental setting.
    pub setting: String,
    /// Mean metrics over evaluated users.
    pub mean: MetricSet,
    /// Per-user metrics, in user order, for users that had test items.
    pub per_user: Vec<MetricSet>,
    /// Number of users that were evaluated.
    pub num_evaluated: usize,
    /// Mean wall-clock seconds spent scoring + ranking per evaluated user.
    pub seconds_per_user: f64,
}

/// Number of users scored per batched-scorer call inside each worker chunk.
/// Large enough that a `Q·Wᵀ` GEMM amortises the query build, small enough
/// that the `B × num_items` score block stays cache- and memory-friendly.
const SCORE_BATCH: usize = 64;

/// Histories and the users eligible for evaluation under `config`.
fn eval_inputs(split: &DataSplit, config: &EvalConfig) -> (Vec<Vec<usize>>, Vec<usize>) {
    assert!(config.max_rank >= 10, "EvalConfig: max_rank must be at least 10 to compute the @10 metrics");
    let histories: Vec<Vec<usize>> =
        if config.include_validation_in_history { split.train_with_val() } else { split.train.clone() };
    let users: Vec<usize> =
        (0..split.num_users()).filter(|&u| !split.test[u].is_empty() && !histories[u].is_empty()).collect();
    (histories, users)
}

/// Ranks one user's (immutable) score vector with fused history masking and
/// judges it against the test truth. `seen_scratch` is the chunk's reusable
/// catalogue bitmap; it is returned all-clear.
fn judge_user(
    scores: &[f32],
    history: &[usize],
    truth: &HashSet<usize>,
    config: &EvalConfig,
    seen_scratch: &mut [bool],
) -> MetricSet {
    let ranked = if config.exclude_history_items {
        top_k_excluding(scores, config.max_rank, history, seen_scratch)
    } else {
        top_k_indices(scores, config.max_rank)
    };
    MetricSet::from_ranking(&ranked, truth)
}

/// Splits `users` into `num_threads` contiguous chunks, runs `work` on each
/// chunk and concatenates the per-chunk results in chunk order.
///
/// One chunk (or fewer than two users) runs inline on the calling thread —
/// no task submission, no synchronisation — fixing the old per-call
/// scoped-spawn overhead for `num_threads == 1`. With more chunks, the
/// caller keeps the first chunk for itself and the remaining chunks run on
/// the persistent work-stealing pool; the scope join makes the caller help
/// drain the pool rather than block. Each chunk owns its output slot, so no
/// locking is involved and the concatenated result is independent of the
/// thread count (and of whether a chunk ran on the caller or a worker).
fn run_user_chunks<W>(users: &[usize], num_threads: usize, work: W) -> Vec<(MetricSet, f64)>
where
    W: Fn(&[usize]) -> Vec<(MetricSet, f64)> + Sync,
{
    let threads = num_threads.max(1);
    if threads <= 1 || users.len() < 2 {
        return work(users);
    }
    let chunk = users.len().div_ceil(threads);
    let parts: Vec<&[usize]> = users.chunks(chunk).collect();
    let mut results: Vec<Option<Vec<(MetricSet, f64)>>> = parts.iter().map(|_| None).collect();
    global_pool().scope(|scope| {
        let (first_slot, rest_slots) = results.split_first_mut().expect("at least one chunk");
        for (slot, &part) in rest_slots.iter_mut().zip(parts.iter().skip(1)) {
            let work = &work;
            scope.spawn(move || *slot = Some(work(part)));
        }
        *first_slot = Some(work(parts[0]));
    });
    results.into_iter().flat_map(|slot| slot.expect("evaluation chunk never ran")).collect()
}

fn build_report(split: &DataSplit, results: Vec<(MetricSet, f64)>) -> EvalReport {
    let per_user: Vec<MetricSet> = results.iter().map(|(m, _)| *m).collect();
    let total_time: f64 = results.iter().map(|(_, t)| t).sum();
    let num_evaluated = per_user.len();
    EvalReport {
        dataset: split.dataset_name.clone(),
        setting: split.setting.name().to_string(),
        mean: MetricSet::mean(&per_user),
        per_user,
        num_evaluated,
        seconds_per_user: if num_evaluated > 0 { total_time / num_evaluated as f64 } else { 0.0 },
    }
}

/// Evaluates a per-user scoring function on a split.
///
/// `score_fn(user, history)` must return one score per catalogue item
/// (`split.num_items` scores). Users without test items (or without any
/// history) are skipped, following the paper's protocol.
///
/// Prefer [`evaluate_batch`] when the model has a batched scorer
/// (`score_batch`); this entry point calls the model once per user.
pub fn evaluate<F>(split: &DataSplit, config: &EvalConfig, score_fn: F) -> EvalReport
where
    F: Fn(usize, &[usize]) -> Vec<f32> + Sync,
{
    let (histories, users) = eval_inputs(split, config);
    let results = run_user_chunks(&users, config.num_threads, |part| {
        let mut seen_scratch = vec![false; split.num_items];
        part.iter()
            .map(|&user| {
                let history = &histories[user];
                let truth: HashSet<usize> = split.test[user].iter().copied().collect();
                let start = Instant::now();
                let scores = score_fn(user, history);
                assert_eq!(
                    scores.len(),
                    split.num_items,
                    "score_fn must return one score per item ({} expected, {} returned)",
                    split.num_items,
                    scores.len()
                );
                let metrics = judge_user(&scores, history, &truth, config, &mut seen_scratch);
                (metrics, start.elapsed().as_secs_f64())
            })
            .collect()
    });
    build_report(split, results)
}

/// Evaluates a batched scoring function on a split.
///
/// `batch_score_fn(users, histories)` receives up to [`SCORE_BATCH`] users at
/// a time together with their scoring histories (same order) and must return
/// a `users.len() × split.num_items` score matrix — e.g.
/// `HamModel::score_batch`, which builds the query matrix once and scores the
/// whole chunk with a single blocked GEMM.
///
/// Produces a report identical to [`evaluate`] over the same scorer (the mask
/// / rank / metric pipeline per user is shared); only the scoring call shape
/// and the wall-clock accounting differ: scoring time is measured per batch
/// and attributed evenly to the batch's users.
pub fn evaluate_batch<F>(split: &DataSplit, config: &EvalConfig, batch_score_fn: F) -> EvalReport
where
    F: Fn(&[usize], &[&[usize]]) -> Matrix + Sync,
{
    let (histories, users) = eval_inputs(split, config);
    let results = run_user_chunks(&users, config.num_threads, |part| {
        let mut seen_scratch = vec![false; split.num_items];
        let mut out = Vec::with_capacity(part.len());
        for batch in part.chunks(SCORE_BATCH) {
            let batch_histories: Vec<&[usize]> = batch.iter().map(|&u| histories[u].as_slice()).collect();
            let start = Instant::now();
            let scores = batch_score_fn(batch, &batch_histories);
            assert_eq!(
                scores.shape(),
                (batch.len(), split.num_items),
                "batch_score_fn must return a (num_users, num_items) matrix"
            );
            let scoring_elapsed = start.elapsed().as_secs_f64();
            for (i, &user) in batch.iter().enumerate() {
                let truth: HashSet<usize> = split.test[user].iter().copied().collect();
                let start = Instant::now();
                // Fused masking ranks straight out of the shared score block.
                let metrics = judge_user(scores.row(i), &histories[user], &truth, config, &mut seen_scratch);
                let ranking_elapsed = start.elapsed().as_secs_f64();
                out.push((metrics, scoring_elapsed / batch.len() as f64 + ranking_elapsed));
            }
        }
        out
    });
    build_report(split, results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ham_data::dataset::SequenceDataset;
    use ham_data::split::{split_dataset, EvalSetting};

    fn toy_split() -> DataSplit {
        // 3 users with 20-item sequences over a 30-item catalogue
        let sequences: Vec<Vec<usize>> = (0..3).map(|u| (0..20).map(|t| (u * 7 + t) % 30).collect()).collect();
        let data = SequenceDataset::new("toy", sequences, 30);
        split_dataset(&data, EvalSetting::Cut8020)
    }

    /// An oracle scorer that already knows each user's test items must achieve
    /// perfect recall and NDCG.
    #[test]
    fn oracle_scorer_achieves_perfect_metrics() {
        let split = toy_split();
        let test_sets = split.test.clone();
        let report = evaluate(&split, &EvalConfig::default(), |user, _history| {
            let mut scores = vec![0.0f32; split.num_items];
            for (rank, &item) in test_sets[user].iter().enumerate() {
                scores[item] = 100.0 - rank as f32;
            }
            scores
        });
        assert_eq!(report.num_evaluated, 3);
        assert!((report.mean.recall_at_10 - 1.0).abs() < 1e-9, "recall {:?}", report.mean);
        assert!((report.mean.ndcg_at_10 - 1.0).abs() < 1e-9);
        assert!(report.seconds_per_user >= 0.0);
    }

    /// A scorer that always ranks the user's history first scores zero when
    /// history items are excluded, confirming the mask is applied.
    #[test]
    fn history_exclusion_masks_seen_items() {
        let split = toy_split();
        let histories = split.train_with_val();
        let adversarial = |user: usize, _h: &[usize]| {
            let mut scores = vec![0.0f32; split.num_items];
            for (rank, &item) in histories[user].iter().enumerate() {
                scores[item] = 100.0 - rank as f32;
            }
            scores
        };
        let masked = evaluate(&split, &EvalConfig::default(), adversarial);
        let unmasked =
            evaluate(&split, &EvalConfig { exclude_history_items: false, ..EvalConfig::default() }, adversarial);
        // With masking the adversarial scorer ranks unseen items arbitrarily
        // (all-zero scores) and cannot exploit the history; without masking it
        // wastes the top of the ranking on already-seen items, so both recalls
        // stay low — but the two configurations must differ to prove the mask
        // has an effect.
        assert!(masked.mean.recall_at_10 <= 1.0);
        assert_ne!(masked.per_user, unmasked.per_user);
    }

    #[test]
    fn parallel_and_sequential_evaluation_agree() {
        let split = toy_split();
        let scorer = |user: usize, history: &[usize]| {
            let mut scores = vec![0.1f32; split.num_items];
            scores[(user * 3 + history.len()) % split.num_items] = 1.0;
            scores
        };
        let seq = evaluate(&split, &EvalConfig { num_threads: 1, ..Default::default() }, scorer);
        let par = evaluate(&split, &EvalConfig { num_threads: 4, ..Default::default() }, scorer);
        assert_eq!(seq.per_user, par.per_user);
        assert_eq!(seq.mean, par.mean);
    }

    #[test]
    fn batched_evaluation_matches_per_user_evaluation() {
        let split = toy_split();
        let per_user = |user: usize, history: &[usize]| {
            let mut scores = vec![0.1f32; split.num_items];
            scores[(user * 5 + history.len()) % split.num_items] = 1.0;
            scores
        };
        let reference = evaluate(&split, &EvalConfig::default(), per_user);
        for threads in [1, 3] {
            let config = EvalConfig { num_threads: threads, ..EvalConfig::default() };
            let batched = evaluate_batch(&split, &config, |users, histories| {
                let mut out = Matrix::zeros(users.len(), split.num_items);
                for (i, (&u, h)) in users.iter().zip(histories).enumerate() {
                    out.row_mut(i).copy_from_slice(&per_user(u, h));
                }
                out
            });
            assert_eq!(batched.per_user, reference.per_user, "threads = {threads}");
            assert_eq!(batched.mean, reference.mean);
        }
    }

    #[test]
    fn users_without_test_items_are_skipped() {
        let sequences = vec![(0..20).collect::<Vec<usize>>(), vec![0, 1]];
        let data = SequenceDataset::new("short", sequences, 30);
        let split = split_dataset(&data, EvalSetting::Cut8020);
        let report = evaluate(&split, &EvalConfig::default(), |_, _| vec![0.0; 30]);
        assert_eq!(report.num_evaluated, 1);
    }

    #[test]
    #[should_panic(expected = "one score per item")]
    fn wrong_score_length_panics() {
        let split = toy_split();
        let _ = evaluate(&split, &EvalConfig::default(), |_, _| vec![0.0; 3]);
    }
}
