//! The evaluation protocol of Section 5.3: for every user with test items,
//! score all items given the user's training(+validation) history, mask the
//! items already seen in that history, rank, and compute Recall/NDCG against
//! the user's test items.

use crate::metrics::MetricSet;
use ham_data::split::DataSplit;
use ham_tensor::ops::top_k_indices;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::time::Instant;

/// Evaluation options.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Use the training + validation items as the scoring history (the
    /// paper's final-evaluation protocol). When `false`, only the training
    /// prefix is used (the protocol for validation-time model selection).
    pub include_validation_in_history: bool,
    /// Mask items that appear in the scoring history so they cannot be
    /// recommended again (the protocol of the HGN / Caser evaluation code).
    pub exclude_history_items: bool,
    /// Number of worker threads for per-user evaluation (1 = sequential).
    pub num_threads: usize,
    /// Ranking depth kept per user; must be at least 10 for the reported
    /// metrics.
    pub max_rank: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self { include_validation_in_history: true, exclude_history_items: true, num_threads: 1, max_rank: 10 }
    }
}

/// The outcome of evaluating one scorer on one split.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalReport {
    /// Dataset the split came from.
    pub dataset: String,
    /// Name of the experimental setting.
    pub setting: String,
    /// Mean metrics over evaluated users.
    pub mean: MetricSet,
    /// Per-user metrics, in user order, for users that had test items.
    pub per_user: Vec<MetricSet>,
    /// Number of users that were evaluated.
    pub num_evaluated: usize,
    /// Mean wall-clock seconds spent scoring + ranking per evaluated user.
    pub seconds_per_user: f64,
}

/// Evaluates a scoring function on a split.
///
/// `score_fn(user, history)` must return one score per catalogue item
/// (`split.num_items` scores). Users without test items (or without any
/// history) are skipped, following the paper's protocol.
pub fn evaluate<F>(split: &DataSplit, config: &EvalConfig, score_fn: F) -> EvalReport
where
    F: Fn(usize, &[usize]) -> Vec<f32> + Sync,
{
    assert!(config.max_rank >= 10, "EvalConfig: max_rank must be at least 10 to compute the @10 metrics");
    let histories: Vec<Vec<usize>> = if config.include_validation_in_history {
        split.train_with_val()
    } else {
        split.train.clone()
    };

    let users: Vec<usize> = (0..split.num_users())
        .filter(|&u| !split.test[u].is_empty() && !histories[u].is_empty())
        .collect();

    let results: Mutex<Vec<(usize, MetricSet, f64)>> = Mutex::new(Vec::with_capacity(users.len()));
    let evaluate_user = |&user: &usize| {
        let history = &histories[user];
        let truth: HashSet<usize> = split.test[user].iter().copied().collect();
        let start = Instant::now();
        let mut scores = score_fn(user, history);
        assert_eq!(
            scores.len(),
            split.num_items,
            "score_fn must return one score per item ({} expected, {} returned)",
            split.num_items,
            scores.len()
        );
        if config.exclude_history_items {
            for &seen in history {
                scores[seen] = f32::NEG_INFINITY;
            }
        }
        let ranked = top_k_indices(&scores, config.max_rank);
        let elapsed = start.elapsed().as_secs_f64();
        let metrics = MetricSet::from_ranking(&ranked, &truth);
        results.lock().push((user, metrics, elapsed));
    };

    let threads = config.num_threads.max(1);
    if threads <= 1 || users.len() < 2 {
        users.iter().for_each(evaluate_user);
    } else {
        let chunk = users.len().div_ceil(threads);
        crossbeam::thread::scope(|scope| {
            for part in users.chunks(chunk) {
                scope.spawn(|_| part.iter().for_each(evaluate_user));
            }
        })
        .expect("evaluation worker panicked");
    }

    let mut collected = results.into_inner();
    collected.sort_by_key(|(user, _, _)| *user);
    let per_user: Vec<MetricSet> = collected.iter().map(|(_, m, _)| *m).collect();
    let total_time: f64 = collected.iter().map(|(_, _, t)| t).sum();
    let num_evaluated = per_user.len();

    EvalReport {
        dataset: split.dataset_name.clone(),
        setting: split.setting.name().to_string(),
        mean: MetricSet::mean(&per_user),
        per_user,
        num_evaluated,
        seconds_per_user: if num_evaluated > 0 { total_time / num_evaluated as f64 } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ham_data::dataset::SequenceDataset;
    use ham_data::split::{split_dataset, EvalSetting};

    fn toy_split() -> DataSplit {
        // 3 users with 20-item sequences over a 30-item catalogue
        let sequences: Vec<Vec<usize>> = (0..3).map(|u| (0..20).map(|t| (u * 7 + t) % 30).collect()).collect();
        let data = SequenceDataset::new("toy", sequences, 30);
        split_dataset(&data, EvalSetting::Cut8020)
    }

    /// An oracle scorer that already knows each user's test items must achieve
    /// perfect recall and NDCG.
    #[test]
    fn oracle_scorer_achieves_perfect_metrics() {
        let split = toy_split();
        let test_sets = split.test.clone();
        let report = evaluate(&split, &EvalConfig::default(), |user, _history| {
            let mut scores = vec![0.0f32; split.num_items];
            for (rank, &item) in test_sets[user].iter().enumerate() {
                scores[item] = 100.0 - rank as f32;
            }
            scores
        });
        assert_eq!(report.num_evaluated, 3);
        assert!((report.mean.recall_at_10 - 1.0).abs() < 1e-9, "recall {:?}", report.mean);
        assert!((report.mean.ndcg_at_10 - 1.0).abs() < 1e-9);
        assert!(report.seconds_per_user >= 0.0);
    }

    /// A scorer that always ranks the user's history first scores zero when
    /// history items are excluded, confirming the mask is applied.
    #[test]
    fn history_exclusion_masks_seen_items() {
        let split = toy_split();
        let histories = split.train_with_val();
        let adversarial = |user: usize, _h: &[usize]| {
            let mut scores = vec![0.0f32; split.num_items];
            for (rank, &item) in histories[user].iter().enumerate() {
                scores[item] = 100.0 - rank as f32;
            }
            scores
        };
        let masked = evaluate(&split, &EvalConfig::default(), adversarial);
        let unmasked = evaluate(
            &split,
            &EvalConfig { exclude_history_items: false, ..EvalConfig::default() },
            adversarial,
        );
        // With masking the adversarial scorer ranks unseen items arbitrarily
        // (all-zero scores) and cannot exploit the history; without masking it
        // wastes the top of the ranking on already-seen items, so both recalls
        // stay low — but the two configurations must differ to prove the mask
        // has an effect.
        assert!(masked.mean.recall_at_10 <= 1.0);
        assert_ne!(masked.per_user, unmasked.per_user);
    }

    #[test]
    fn parallel_and_sequential_evaluation_agree() {
        let split = toy_split();
        let scorer = |user: usize, history: &[usize]| {
            let mut scores = vec![0.1f32; split.num_items];
            scores[(user * 3 + history.len()) % split.num_items] = 1.0;
            scores
        };
        let seq = evaluate(&split, &EvalConfig { num_threads: 1, ..Default::default() }, scorer);
        let par = evaluate(&split, &EvalConfig { num_threads: 4, ..Default::default() }, scorer);
        assert_eq!(seq.per_user, par.per_user);
        assert_eq!(seq.mean, par.mean);
    }

    #[test]
    fn users_without_test_items_are_skipped() {
        let sequences = vec![(0..20).collect::<Vec<usize>>(), vec![0, 1]];
        let data = SequenceDataset::new("short", sequences, 30);
        let split = split_dataset(&data, EvalSetting::Cut8020);
        let report = evaluate(&split, &EvalConfig::default(), |_, _| vec![0.0; 30]);
        assert_eq!(report.num_evaluated, 1);
    }

    #[test]
    #[should_panic(expected = "one score per item")]
    fn wrong_score_length_panics() {
        let split = toy_split();
        let _ = evaluate(&split, &EvalConfig::default(), |_, _| vec![0.0; 3]);
    }
}
