//! Additional ranking metrics beyond the two the paper reports: hit rate,
//! mean reciprocal rank (MRR), average precision and per-user AUC. They share
//! the same call convention as [`crate::metrics`] (a ranked recommendation
//! list plus the set of ground-truth items) and are exposed through the
//! experiment harness for users who want a broader read-out than
//! Recall@k / NDCG@k.

use ham_tensor::ops::top_k_indices_masked;
use std::collections::HashSet;

/// Ranks the top-`k` items while excluding the user's history, without
/// writing `-inf` sentinels into the score buffer.
///
/// This is the fused "mask + select" ranking path of the evaluation
/// protocol: the history items are marked in the reusable `seen_scratch`
/// bitmap (O(history)), the bounded-heap top-k scan skips them via the
/// bitmap, and the marks are cleared again before returning — so `scores`
/// can be a borrowed row of a shared batch-score matrix and `seen_scratch`
/// is reused across every user of a worker chunk. The returned ranking is
/// bit-identical to overwriting the history scores with `-inf` and calling
/// `top_k_indices` (masked items still pad the tail, in index order, when
/// fewer than `k` items are unseen).
///
/// History entries outside the catalogue are ignored.
///
/// # Panics
/// Panics if `seen_scratch` and `scores` differ in length.
pub fn top_k_excluding(scores: &[f32], k: usize, history: &[usize], seen_scratch: &mut [bool]) -> Vec<usize> {
    for &item in history {
        if item < seen_scratch.len() {
            seen_scratch[item] = true;
        }
    }
    let ranked = top_k_indices_masked(scores, k, seen_scratch);
    for &item in history {
        if item < seen_scratch.len() {
            seen_scratch[item] = false;
        }
    }
    ranked
}

/// Hit rate @k: 1.0 if *any* ground-truth item appears in the top-`k`
/// recommendations, 0.0 otherwise.
pub fn hit_rate_at_k(recommended: &[usize], ground_truth: &HashSet<usize>, k: usize) -> f64 {
    if ground_truth.is_empty() {
        return 0.0;
    }
    if recommended.iter().take(k).any(|item| ground_truth.contains(item)) {
        1.0
    } else {
        0.0
    }
}

/// Mean reciprocal rank of the *first* relevant item within the top-`k`
/// (0.0 when no relevant item appears).
pub fn mrr_at_k(recommended: &[usize], ground_truth: &HashSet<usize>, k: usize) -> f64 {
    if ground_truth.is_empty() {
        return 0.0;
    }
    recommended.iter().take(k).position(|item| ground_truth.contains(item)).map_or(0.0, |pos| 1.0 / (pos + 1) as f64)
}

/// Average precision @k: the mean of precision@i over the positions `i` of
/// relevant items within the top-`k`, normalised by `min(k, |truth|)`.
pub fn average_precision_at_k(recommended: &[usize], ground_truth: &HashSet<usize>, k: usize) -> f64 {
    if ground_truth.is_empty() {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut precision_sum = 0.0;
    for (pos, item) in recommended.iter().take(k).enumerate() {
        if ground_truth.contains(item) {
            hits += 1;
            precision_sum += hits as f64 / (pos + 1) as f64;
        }
    }
    let denom = ground_truth.len().min(k);
    if denom == 0 {
        0.0
    } else {
        precision_sum / denom as f64
    }
}

/// Per-user AUC from raw scores: the probability that a uniformly chosen
/// ground-truth item outscores a uniformly chosen non-relevant item (ties
/// count one half). This is the metric the BPR objective optimises directly.
pub fn auc_from_scores(scores: &[f32], ground_truth: &HashSet<usize>) -> f64 {
    if ground_truth.is_empty() || ground_truth.len() >= scores.len() {
        return 0.0;
    }
    let mut wins = 0.0f64;
    let mut comparisons = 0.0f64;
    for &pos_item in ground_truth {
        let pos_score = scores[pos_item];
        for (item, &neg_score) in scores.iter().enumerate() {
            if ground_truth.contains(&item) {
                continue;
            }
            comparisons += 1.0;
            if pos_score > neg_score {
                wins += 1.0;
            } else if pos_score == neg_score {
                wins += 0.5;
            }
        }
    }
    if comparisons == 0.0 {
        0.0
    } else {
        wins / comparisons
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth(items: &[usize]) -> HashSet<usize> {
        items.iter().copied().collect()
    }

    #[test]
    fn top_k_excluding_matches_inf_masking_and_resets_scratch() {
        let scores = [0.9f32, 0.8, 0.7, 0.6, 0.5];
        let mut scratch = vec![false; 5];
        let ranked = top_k_excluding(&scores, 3, &[0, 2, 17], &mut scratch);
        assert_eq!(ranked, vec![1, 3, 4]);
        assert!(scratch.iter().all(|&b| !b), "scratch must be clean for the next user");
        // Excluding everything still returns k indices (tail padding).
        assert_eq!(top_k_excluding(&scores, 2, &[0, 1, 2, 3, 4], &mut scratch), vec![0, 1]);
        assert!(scratch.iter().all(|&b| !b));
    }

    #[test]
    fn hit_rate_is_binary() {
        let gt = truth(&[5]);
        assert_eq!(hit_rate_at_k(&[1, 2, 5], &gt, 3), 1.0);
        assert_eq!(hit_rate_at_k(&[1, 2, 5], &gt, 2), 0.0);
        assert_eq!(hit_rate_at_k(&[1, 2], &HashSet::new(), 2), 0.0);
    }

    #[test]
    fn mrr_rewards_early_hits() {
        let gt = truth(&[7, 9]);
        assert_eq!(mrr_at_k(&[7, 1, 2], &gt, 3), 1.0);
        assert_eq!(mrr_at_k(&[1, 7, 2], &gt, 3), 0.5);
        assert_eq!(mrr_at_k(&[1, 2, 3], &gt, 3), 0.0);
    }

    #[test]
    fn average_precision_known_value() {
        // relevant at positions 1 and 3 of the top-3, |truth| = 2
        let gt = truth(&[10, 30]);
        let ap = average_precision_at_k(&[10, 20, 30], &gt, 3);
        let expected = (1.0 / 1.0 + 2.0 / 3.0) / 2.0;
        assert!((ap - expected).abs() < 1e-12);
        assert_eq!(average_precision_at_k(&[20, 40], &gt, 2), 0.0);
    }

    #[test]
    fn ap_is_one_for_perfect_prefix() {
        let gt = truth(&[1, 2, 3]);
        assert!((average_precision_at_k(&[1, 2, 3, 9], &gt, 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auc_extremes_and_ties() {
        // positive item has the highest score -> AUC 1
        let gt = truth(&[0]);
        assert_eq!(auc_from_scores(&[5.0, 1.0, 2.0], &gt), 1.0);
        // positive item has the lowest score -> AUC 0
        assert_eq!(auc_from_scores(&[-1.0, 1.0, 2.0], &gt), 0.0);
        // all ties -> AUC 0.5
        assert_eq!(auc_from_scores(&[1.0, 1.0, 1.0], &gt), 0.5);
        // degenerate inputs
        assert_eq!(auc_from_scores(&[1.0], &gt), 0.0);
        assert_eq!(auc_from_scores(&[1.0, 2.0], &HashSet::new()), 0.0);
    }

    #[test]
    fn metric_relationships_hold_on_a_random_like_example() {
        let gt = truth(&[2, 4, 6]);
        let rec = vec![9, 2, 8, 4, 7, 6];
        let hit = hit_rate_at_k(&rec, &gt, 6);
        let mrr = mrr_at_k(&rec, &gt, 6);
        let ap = average_precision_at_k(&rec, &gt, 6);
        assert_eq!(hit, 1.0);
        assert!(mrr <= hit);
        assert!(ap <= hit && ap > 0.0);
    }
}
