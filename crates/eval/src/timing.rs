//! Run-time measurement in testing (Table 14 of the paper): mean wall-clock
//! seconds to produce recommendations for one user.

use std::time::Instant;

/// Timing measurement of a scorer over a set of users.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingReport {
    /// Mean seconds per user (scoring every catalogue item once).
    pub seconds_per_user: f64,
    /// Number of users measured.
    pub users_measured: usize,
    /// Total wall-clock seconds.
    pub total_seconds: f64,
}

impl TimingReport {
    /// The speed-up of this method relative to `other`
    /// (`other.seconds_per_user / self.seconds_per_user`), i.e. how many times
    /// faster `self` is.
    pub fn speedup_over(&self, other: &TimingReport) -> f64 {
        if self.seconds_per_user == 0.0 {
            return f64::INFINITY;
        }
        other.seconds_per_user / self.seconds_per_user
    }
}

/// Measures the mean per-user scoring time of `score_fn` over the given
/// users/histories. The scores themselves are discarded; a fold over the
/// first score guards against the compiler optimising the call away.
pub fn measure_scoring_time<F>(users: &[(usize, Vec<usize>)], score_fn: F) -> TimingReport
where
    F: Fn(usize, &[usize]) -> Vec<f32>,
{
    assert!(!users.is_empty(), "measure_scoring_time: need at least one user");
    let start = Instant::now();
    let mut guard = 0.0f32;
    for (user, history) in users {
        let scores = score_fn(*user, history);
        guard += scores.first().copied().unwrap_or(0.0);
    }
    let total = start.elapsed().as_secs_f64();
    // keep `guard` observable
    std::hint::black_box(guard);
    TimingReport { seconds_per_user: total / users.len() as f64, users_measured: users.len(), total_seconds: total }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_positive_time_and_counts_users() {
        let users: Vec<(usize, Vec<usize>)> = (0..5).map(|u| (u, vec![1, 2, 3])).collect();
        let report = measure_scoring_time(&users, |_, _| vec![0.5; 100]);
        assert_eq!(report.users_measured, 5);
        assert!(report.seconds_per_user >= 0.0);
        assert!(report.total_seconds >= report.seconds_per_user);
    }

    #[test]
    fn speedup_is_a_ratio_of_per_user_times() {
        let fast = TimingReport { seconds_per_user: 1e-4, users_measured: 10, total_seconds: 1e-3 };
        let slow = TimingReport { seconds_per_user: 2e-3, users_measured: 10, total_seconds: 2e-2 };
        assert!((fast.speedup_over(&slow) - 20.0).abs() < 1e-9);
        assert!(slow.speedup_over(&fast) < 1.0);
    }

    #[test]
    fn zero_time_gives_infinite_speedup() {
        let zero = TimingReport { seconds_per_user: 0.0, users_measured: 1, total_seconds: 0.0 };
        let other = TimingReport { seconds_per_user: 1.0, users_measured: 1, total_seconds: 1.0 };
        assert!(zero.speedup_over(&other).is_infinite());
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn empty_user_list_panics() {
        let _ = measure_scoring_time(&[], |_, _| vec![]);
    }
}
