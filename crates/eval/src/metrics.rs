//! Recall@k and NDCG@k (Section 5.4 of the paper).

use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Recall@k for one user: the proportion of the user's ground-truth test
/// items that appear among the top-`k` recommended items.
pub fn recall_at_k(recommended: &[usize], ground_truth: &HashSet<usize>, k: usize) -> f64 {
    if ground_truth.is_empty() {
        return 0.0;
    }
    let hits = recommended.iter().take(k).filter(|item| ground_truth.contains(item)).count();
    hits as f64 / ground_truth.len() as f64
}

/// NDCG@k for one user with binary gains: the discounted cumulative gain of
/// the top-`k` recommendations normalised by the ideal DCG (all ground-truth
/// items, up to `k`, ranked first).
pub fn ndcg_at_k(recommended: &[usize], ground_truth: &HashSet<usize>, k: usize) -> f64 {
    if ground_truth.is_empty() {
        return 0.0;
    }
    let dcg: f64 = recommended
        .iter()
        .take(k)
        .enumerate()
        .filter(|(_, item)| ground_truth.contains(item))
        .map(|(pos, _)| 1.0 / ((pos + 2) as f64).log2())
        .sum();
    let ideal_hits = ground_truth.len().min(k);
    let idcg: f64 = (0..ideal_hits).map(|pos| 1.0 / ((pos + 2) as f64).log2()).sum();
    if idcg == 0.0 {
        0.0
    } else {
        dcg / idcg
    }
}

/// The four metric values the paper reports per method and dataset.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricSet {
    /// Recall@5.
    pub recall_at_5: f64,
    /// Recall@10.
    pub recall_at_10: f64,
    /// NDCG@5.
    pub ndcg_at_5: f64,
    /// NDCG@10.
    pub ndcg_at_10: f64,
}

impl MetricSet {
    /// Computes all four metrics from a ranked recommendation list and the
    /// ground-truth test items of one user.
    pub fn from_ranking(recommended: &[usize], ground_truth: &HashSet<usize>) -> Self {
        Self {
            recall_at_5: recall_at_k(recommended, ground_truth, 5),
            recall_at_10: recall_at_k(recommended, ground_truth, 10),
            ndcg_at_5: ndcg_at_k(recommended, ground_truth, 5),
            ndcg_at_10: ndcg_at_k(recommended, ground_truth, 10),
        }
    }

    /// Element-wise mean of a collection of metric sets (the per-dataset
    /// averages reported in the tables). Returns the default (all zeros) for
    /// an empty collection.
    pub fn mean(sets: &[MetricSet]) -> Self {
        if sets.is_empty() {
            return Self::default();
        }
        let n = sets.len() as f64;
        Self {
            recall_at_5: sets.iter().map(|s| s.recall_at_5).sum::<f64>() / n,
            recall_at_10: sets.iter().map(|s| s.recall_at_10).sum::<f64>() / n,
            ndcg_at_5: sets.iter().map(|s| s.ndcg_at_5).sum::<f64>() / n,
            ndcg_at_10: sets.iter().map(|s| s.ndcg_at_10).sum::<f64>() / n,
        }
    }

    /// The metric selected by name (`"Recall@5"`, `"Recall@10"`, `"NDCG@5"`,
    /// `"NDCG@10"`), used by the table-formatting code.
    pub fn get(&self, name: &str) -> f64 {
        match name {
            "Recall@5" => self.recall_at_5,
            "Recall@10" => self.recall_at_10,
            "NDCG@5" => self.ndcg_at_5,
            "NDCG@10" => self.ndcg_at_10,
            other => panic!("unknown metric {other:?}"),
        }
    }

    /// The metric names in the order the paper reports them.
    pub fn metric_names() -> [&'static str; 4] {
        ["Recall@5", "Recall@10", "NDCG@5", "NDCG@10"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth(items: &[usize]) -> HashSet<usize> {
        items.iter().copied().collect()
    }

    #[test]
    fn recall_counts_hits_over_ground_truth_size() {
        let rec = vec![1, 2, 3, 4, 5];
        let gt = truth(&[2, 9, 4]);
        assert!((recall_at_k(&rec, &gt, 5) - 2.0 / 3.0).abs() < 1e-12);
        assert!((recall_at_k(&rec, &gt, 1) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn recall_is_one_when_everything_is_found() {
        let rec = vec![7, 8, 9];
        let gt = truth(&[8, 7]);
        assert_eq!(recall_at_k(&rec, &gt, 5), 1.0);
    }

    #[test]
    fn empty_ground_truth_gives_zero() {
        let rec = vec![1, 2];
        assert_eq!(recall_at_k(&rec, &HashSet::new(), 5), 0.0);
        assert_eq!(ndcg_at_k(&rec, &HashSet::new(), 5), 0.0);
    }

    #[test]
    fn ndcg_is_one_for_perfect_ranking() {
        let gt = truth(&[3, 5]);
        assert!((ndcg_at_k(&[3, 5, 9], &gt, 5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_penalises_late_hits() {
        let gt = truth(&[3]);
        let early = ndcg_at_k(&[3, 1, 2], &gt, 5);
        let late = ndcg_at_k(&[1, 2, 3], &gt, 5);
        assert!(early > late);
        assert!(late > 0.0);
        // exact value: 1/log2(4) / (1/log2(2)) = 0.5
        assert!((late - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ndcg_idcg_is_capped_at_k() {
        // 10 relevant items but k = 2: ideal has only two positions
        let gt: HashSet<usize> = (0..10).collect();
        let perfect = ndcg_at_k(&[0, 1], &gt, 2);
        assert!((perfect - 1.0).abs() < 1e-12);
    }

    #[test]
    fn metric_set_from_ranking_and_mean() {
        let gt = truth(&[1, 2]);
        let a = MetricSet::from_ranking(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10], &gt);
        assert_eq!(a.recall_at_5, 1.0);
        let b = MetricSet::default();
        let mean = MetricSet::mean(&[a, b]);
        assert!((mean.recall_at_5 - 0.5).abs() < 1e-12);
        assert_eq!(MetricSet::mean(&[]), MetricSet::default());
        assert_eq!(a.get("Recall@5"), a.recall_at_5);
        assert_eq!(MetricSet::metric_names().len(), 4);
    }

    #[test]
    #[should_panic(expected = "unknown metric")]
    fn unknown_metric_name_panics() {
        MetricSet::default().get("MRR");
    }
}
