//! Paired significance testing over per-user metrics — the `*` markers of
//! Tables 3–9 in the paper (95% / 90% confidence).

/// Result of a paired t-test between two methods' per-user metric values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TTestResult {
    /// The t statistic of the mean paired difference.
    pub t_statistic: f64,
    /// Degrees of freedom (`n − 1`).
    pub degrees_of_freedom: usize,
    /// Mean of the paired differences (`a − b`).
    pub mean_difference: f64,
    /// Two-sided significance at the 95% confidence level.
    pub significant_95: bool,
    /// Two-sided significance at the 90% confidence level.
    pub significant_90: bool,
}

/// Performs a paired t-test of `a` against `b` (both are per-user values of
/// the same metric for two methods, aligned by user).
///
/// The critical values use the normal approximation of the t distribution,
/// which is accurate for the user counts of every benchmark dataset (hundreds
/// to tens of thousands of users); for tiny `n` the test is conservative.
///
/// # Panics
/// Panics if the slices have different lengths or fewer than two pairs.
pub fn paired_t_test(a: &[f64], b: &[f64]) -> TTestResult {
    assert_eq!(a.len(), b.len(), "paired_t_test: methods must be evaluated on the same users");
    assert!(a.len() >= 2, "paired_t_test: need at least two paired observations");
    let n = a.len();
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let mean = diffs.iter().sum::<f64>() / n as f64;
    let var = diffs.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / (n - 1) as f64;
    let std_err = (var / n as f64).sqrt();
    let t = if std_err == 0.0 {
        if mean == 0.0 {
            0.0
        } else {
            f64::INFINITY * mean.signum()
        }
    } else {
        mean / std_err
    };
    // Two-sided critical values of the standard normal: 1.96 (95%), 1.645 (90%).
    TTestResult {
        t_statistic: t,
        degrees_of_freedom: n - 1,
        mean_difference: mean,
        significant_95: t.abs() > 1.96,
        significant_90: t.abs() > 1.645,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clearly_different_samples_are_significant() {
        let a: Vec<f64> = (0..100).map(|i| 0.5 + (i % 7) as f64 * 0.01).collect();
        let b: Vec<f64> = (0..100).map(|i| 0.3 + (i % 7) as f64 * 0.01).collect();
        let result = paired_t_test(&a, &b);
        assert!(result.significant_95);
        assert!(result.significant_90);
        assert!(result.mean_difference > 0.19);
    }

    #[test]
    fn identical_samples_are_not_significant() {
        let a = vec![0.4; 50];
        let result = paired_t_test(&a, &a);
        assert_eq!(result.t_statistic, 0.0);
        assert!(!result.significant_90);
        assert_eq!(result.degrees_of_freedom, 49);
    }

    #[test]
    fn noisy_overlapping_samples_are_not_significant() {
        // alternating tiny differences cancel out
        let a: Vec<f64> = (0..60).map(|i| 0.5 + if i % 2 == 0 { 0.01 } else { -0.01 }).collect();
        let b = vec![0.5; 60];
        let result = paired_t_test(&a, &b);
        assert!(!result.significant_95);
    }

    #[test]
    fn constant_nonzero_difference_is_significant() {
        let a = vec![0.6; 30];
        let b = vec![0.5; 30];
        let result = paired_t_test(&a, &b);
        // the paired differences are (numerically almost) constant, so the
        // t statistic is enormous (or infinite when the variance is exactly 0)
        assert!(result.t_statistic > 1e3 || result.t_statistic.is_infinite());
        assert!(result.significant_95);
    }

    #[test]
    #[should_panic(expected = "same users")]
    fn mismatched_lengths_panic() {
        let _ = paired_t_test(&[1.0, 2.0], &[1.0]);
    }
}
