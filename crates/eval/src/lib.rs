//! # ham-eval
//!
//! Evaluation infrastructure for the HAM reproduction: the Recall@k / NDCG@k
//! metrics (Section 5.4), the per-setting evaluation protocol (Section 5.3),
//! paired significance testing (the `*` markers of Tables 3–9), run-time
//! measurement in testing (Table 14) and improvement summaries (Table 9).
//!
//! The evaluator is model-agnostic: it takes any scoring function
//! `Fn(user, history) -> scores`, so HAM models, the baselines, and ad-hoc
//! scorers are all evaluated through the same code path.
//!
//! ## Example
//!
//! ```
//! use ham_data::synthetic::DatasetProfile;
//! use ham_data::split::{split_dataset, EvalSetting};
//! use ham_eval::protocol::{evaluate, EvalConfig};
//!
//! let data = DatasetProfile::tiny("eval-doc").generate(1);
//! let split = split_dataset(&data, EvalSetting::Cut8020);
//! // a popularity scorer
//! let mut pop = vec![0.0f32; data.num_items];
//! for seq in &split.train { for &i in seq { pop[i] += 1.0; } }
//! let report = evaluate(&split, &EvalConfig::default(), |_user, _history| pop.clone());
//! assert!(report.mean.recall_at_10 >= 0.0 && report.mean.recall_at_10 <= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod improvement;
pub mod metrics;
pub mod protocol;
pub mod ranking;
pub mod report;
pub mod significance;
pub mod timing;

pub use metrics::{ndcg_at_k, recall_at_k, MetricSet};
pub use protocol::{evaluate, EvalConfig, EvalReport};
pub use significance::{paired_t_test, TTestResult};
pub use timing::{measure_scoring_time, TimingReport};
