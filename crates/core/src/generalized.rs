//! Generalized multi-window HAM (the extension sketched in Section 4.2 of the
//! paper: "HAM can be a general framework, in which arbitrary numbers of
//! various-order associations can be incorporated").
//!
//! Instead of exactly one high-order window `n_h` and one low-order window
//! `n_l`, a [`GeneralizedHamModel`] pools the most recent `w` items for every
//! window size `w` in its configuration and sums all the resulting
//! association terms into the query vector:
//!
//! ```text
//! r_ij = u_i·w_j + Σ_{w ∈ windows} pool(V[last w items])·w_j   (+ synergies on the largest window)
//! ```
//!
//! Setting `windows = [n_h, n_l]` recovers the paper's HAM exactly (verified
//! in the tests below), while longer lists add intermediate-order
//! associations.

use crate::config::{HamConfig, TrainConfig};
use crate::model::HamModel;
use crate::synergy::{apply_latent_cross, synergy_terms};
use crate::trainer::train as train_base;
use ham_data::dataset::ItemId;
use ham_data::window::recent_window;
use ham_tensor::matrix::dot;
use ham_tensor::Pooling;
use serde::{Deserialize, Serialize};

/// Configuration of a multi-window HAM model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneralizedHamConfig {
    /// Embedding dimension.
    pub d: usize,
    /// The association window sizes, e.g. `[6, 3, 1]`. Must be non-empty and
    /// sorted in decreasing order; the largest window drives the training
    /// sliding window and carries the synergy term.
    pub windows: Vec<usize>,
    /// Number of target items per training window.
    pub n_p: usize,
    /// Synergy order applied to the largest window (`1` disables synergies).
    pub synergy_order: usize,
    /// Pooling mechanism shared by all windows.
    pub pooling: Pooling,
    /// Whether the user general-preference term is used.
    pub use_user_term: bool,
}

impl Default for GeneralizedHamConfig {
    fn default() -> Self {
        Self { d: 64, windows: vec![5, 2], n_p: 3, synergy_order: 2, pooling: Pooling::Mean, use_user_term: true }
    }
}

impl GeneralizedHamConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    /// Panics if the window list is empty, not strictly decreasing, or the
    /// synergy order exceeds the largest window.
    pub fn validate(&self) {
        assert!(!self.windows.is_empty(), "GeneralizedHamConfig: need at least one window");
        assert!(self.d > 0 && self.n_p > 0, "GeneralizedHamConfig: d and n_p must be positive");
        for pair in self.windows.windows(2) {
            assert!(
                pair[0] > pair[1],
                "GeneralizedHamConfig: windows must be strictly decreasing, got {:?}",
                self.windows
            );
        }
        assert!(*self.windows.last().unwrap() >= 1, "GeneralizedHamConfig: windows must be >= 1");
        assert!(
            self.synergy_order >= 1 && self.synergy_order <= self.windows[0],
            "GeneralizedHamConfig: synergy order must be in 1..=largest window"
        );
    }

    /// The equivalent two-window [`HamConfig`] used to drive training
    /// (largest window as `n_h`, second largest as `n_l` when present).
    fn base_config(&self) -> HamConfig {
        HamConfig {
            d: self.d,
            n_h: self.windows[0],
            n_l: self.windows.get(1).copied().unwrap_or(0),
            n_p: self.n_p,
            synergy_order: self.synergy_order,
            pooling: self.pooling,
            use_user_term: self.use_user_term,
        }
    }
}

/// A HAM model with an arbitrary set of association window sizes.
///
/// The first two windows are trained exactly like the paper's HAM (reusing the
/// BPR trainer); additional windows reuse the same input item embeddings at
/// inference time, which keeps the model training-compatible while exposing
/// the richer multi-order scoring of the framework extension.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneralizedHamModel {
    config: GeneralizedHamConfig,
    base: HamModel,
}

impl GeneralizedHamModel {
    /// Trains a multi-window HAM model.
    pub fn train(
        train_sequences: &[Vec<ItemId>],
        num_items: usize,
        config: &GeneralizedHamConfig,
        train_config: &TrainConfig,
        seed: u64,
    ) -> Self {
        config.validate();
        let base = train_base(train_sequences, num_items, &config.base_config(), train_config, seed);
        Self { config: config.clone(), base }
    }

    /// Wraps an already-trained two-window model, adding extra windows at
    /// inference time.
    pub fn from_base(base: HamModel, windows: Vec<usize>) -> Self {
        let config = GeneralizedHamConfig {
            d: base.config().d,
            windows,
            n_p: base.config().n_p,
            synergy_order: base.config().synergy_order,
            pooling: base.config().pooling,
            use_user_term: base.config().use_user_term,
        };
        config.validate();
        Self { config, base }
    }

    /// The model's configuration.
    pub fn config(&self) -> &GeneralizedHamConfig {
        &self.config
    }

    /// The underlying two-window HAM model.
    pub fn base(&self) -> &HamModel {
        &self.base
    }

    /// The multi-window query vector `q` such that `r_ij = q·w_j`.
    pub fn query_vector(&self, user: usize, sequence: &[ItemId]) -> Vec<f32> {
        assert!(!sequence.is_empty(), "query_vector: the user's sequence must not be empty");
        let v = self.base.input_item_embeddings();
        let mut q = vec![0.0f32; self.config.d];

        for (rank, &window_len) in self.config.windows.iter().enumerate() {
            let window = recent_window(sequence, window_len);
            let rows = v.gather_rows(&window);
            let pooled = self.config.pooling.pool(&rows);
            let term = if rank == 0 && self.config.synergy_order >= 2 {
                let synergies = synergy_terms(&rows, self.config.synergy_order);
                apply_latent_cross(&pooled, &synergies)
            } else {
                pooled
            };
            for (qi, ti) in q.iter_mut().zip(&term) {
                *qi += ti;
            }
        }
        if self.config.use_user_term {
            for (qi, ui) in q.iter_mut().zip(self.base.user_embeddings().row(user)) {
                *qi += ui;
            }
        }
        q
    }

    /// Scores every catalogue item for the user in one fused `W · q` pass.
    pub fn score_all(&self, user: usize, sequence: &[ItemId]) -> Vec<f32> {
        let q = self.query_vector(user, sequence);
        self.base.candidate_item_embeddings().matvec_transposed(&q)
    }

    /// Scores every catalogue item for a batch of users with one blocked
    /// `Q · Wᵀ` GEMM (row `i` matches `score_all(users[i], histories[i])`
    /// within 1e-5).
    ///
    /// # Panics
    /// Panics if `users` and `histories` differ in length.
    pub fn score_batch(&self, users: &[usize], histories: &[&[ItemId]]) -> ham_tensor::Matrix {
        crate::scorer::batched_query_scores(
            users,
            histories,
            self.config.d,
            self.base.candidate_item_embeddings(),
            |u, h| self.query_vector(u, h),
        )
    }

    /// Recommends the `k` highest-scoring items, optionally excluding already
    /// seen items (skipped during the top-k scan through a catalogue bitmap —
    /// the fused mask+select path — rather than written as `-inf` scores).
    pub fn recommend_top_k(&self, user: usize, sequence: &[ItemId], k: usize, exclude_seen: bool) -> Vec<ItemId> {
        let scores = self.score_all(user, sequence);
        if exclude_seen {
            let mut mask = crate::scorer::SeenMask::new(self.base.num_items());
            mask.mark(sequence);
            ham_tensor::ops::top_k_indices_masked(&scores, k, mask.bits())
        } else {
            ham_tensor::ops::top_k_indices(&scores, k)
        }
    }

    /// The extra inner product added by `w`-sized windows beyond the base
    /// model (useful for analysing what the intermediate orders contribute).
    pub fn window_contribution(&self, window_len: usize, sequence: &[ItemId], item: ItemId) -> f32 {
        let v = self.base.input_item_embeddings();
        let window = recent_window(sequence, window_len);
        let rows = v.gather_rows(&window);
        let pooled = self.config.pooling.pool(&rows);
        dot(&pooled, self.base.candidate_item_embeddings().row(item))
    }

    /// Reference to a `Matrix` accessor used by integration tests.
    pub fn num_items(&self) -> usize {
        self.base.num_items()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HamVariant;
    use ham_data::synthetic::DatasetProfile;

    fn tiny_data() -> (Vec<Vec<usize>>, usize) {
        let data = DatasetProfile::tiny("generalized").generate(3);
        (data.sequences.clone(), data.num_items)
    }

    #[test]
    fn two_window_configuration_recovers_plain_ham() {
        let (seqs, num_items) = tiny_data();
        let config = GeneralizedHamConfig {
            d: 8,
            windows: vec![4, 2],
            n_p: 2,
            synergy_order: 2,
            pooling: Pooling::Mean,
            use_user_term: true,
        };
        let tc = TrainConfig { epochs: 1, batch_size: 64, ..TrainConfig::default() };
        let generalized = GeneralizedHamModel::train(&seqs, num_items, &config, &tc, 5);

        // A plain HAMs_m trained identically must give identical scores.
        let plain_cfg = HamConfig::for_variant(HamVariant::HamSM).with_dimensions(8, 4, 2, 2, 2);
        let plain = train_base(&seqs, num_items, &plain_cfg, &tc, 5);
        let history = &seqs[0];
        let a = generalized.score_all(0, history);
        let b = plain.score_all(0, history);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5, "generalized two-window model must match plain HAM: {x} vs {y}");
        }
    }

    #[test]
    fn extra_windows_change_the_scores() {
        let (seqs, num_items) = tiny_data();
        let tc = TrainConfig { epochs: 1, batch_size: 64, ..TrainConfig::default() };
        let plain_cfg = HamConfig::for_variant(HamVariant::HamSM).with_dimensions(8, 6, 2, 2, 2);
        let base = train_base(&seqs, num_items, &plain_cfg, &tc, 5);
        let two = GeneralizedHamModel::from_base(base.clone(), vec![6, 2]);
        let three = GeneralizedHamModel::from_base(base, vec![6, 3, 1]);
        let history = &seqs[1];
        assert_ne!(two.score_all(1, history), three.score_all(1, history));
        assert_eq!(three.config().windows, vec![6, 3, 1]);
        assert_eq!(three.num_items(), num_items);
    }

    #[test]
    fn window_contribution_is_a_single_inner_product() {
        let (seqs, num_items) = tiny_data();
        let tc = TrainConfig { epochs: 1, batch_size: 64, ..TrainConfig::default() };
        let plain_cfg = HamConfig::for_variant(HamVariant::HamM).with_dimensions(8, 4, 1, 2, 1);
        let base = train_base(&seqs, num_items, &plain_cfg, &tc, 5);
        let model = GeneralizedHamModel::from_base(base, vec![4, 1]);
        let c = model.window_contribution(1, &seqs[0], 3);
        assert!(c.is_finite());
    }

    #[test]
    fn recommendations_exclude_seen_items() {
        let (seqs, num_items) = tiny_data();
        let tc = TrainConfig { epochs: 1, batch_size: 64, ..TrainConfig::default() };
        let cfg = GeneralizedHamConfig { d: 8, windows: vec![5, 3, 1], n_p: 2, ..Default::default() };
        let model = GeneralizedHamModel::train(&seqs, num_items, &cfg, &tc, 2);
        let rec = model.recommend_top_k(0, &seqs[0][..6], 10, true);
        for item in &seqs[0][..6] {
            assert!(!rec.contains(item));
        }
    }

    #[test]
    #[should_panic(expected = "strictly decreasing")]
    fn non_decreasing_windows_panic() {
        GeneralizedHamConfig { windows: vec![3, 3], ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "at least one window")]
    fn empty_windows_panic() {
        GeneralizedHamConfig { windows: vec![], ..Default::default() }.validate();
    }
}
