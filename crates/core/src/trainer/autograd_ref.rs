//! The BPR objective of HAM expressed on the `ham-autograd` tape.
//!
//! This is the reference trainer: it supports every HAM variant including the
//! synergy/latent-cross models (Eq. 5–6), at the cost of building a graph per
//! mini-batch. The manual path in [`super::manual`] is validated against it.

use super::{HamParams, PreparedInstance};
use crate::config::HamConfig;
use ham_autograd::{GradStore, Graph, VarId};
use ham_tensor::Pooling;

/// Computes the gradients and the mean loss of one mini-batch on the tape.
pub(crate) fn batch_gradients(params: &HamParams, batch: &[PreparedInstance], config: &HamConfig) -> (GradStore, f32) {
    assert!(!batch.is_empty(), "batch_gradients: batch must not be empty");
    let mut g = Graph::new();
    let mut instance_losses: Vec<VarId> = Vec::with_capacity(batch.len());

    for instance in batch {
        let loss = instance_loss(&mut g, params, instance, config);
        instance_losses.push(loss);
    }

    let stacked = g.concat_rows(&instance_losses);
    let batch_loss = g.mean_all(stacked);
    let loss_value = g.value(batch_loss).get(0, 0);
    (g.backward(batch_loss), loss_value)
}

/// Builds the loss of a single sliding-window instance on the tape and
/// returns its `1 x 1` node.
fn instance_loss(g: &mut Graph, params: &HamParams, instance: &PreparedInstance, config: &HamConfig) -> VarId {
    let store = &params.store;

    // High-order association: pooled window embedding (h), optionally combined
    // with the recursive synergies through the latent cross (s).
    let rows = g.gather(store, params.v, &instance.input);
    let h = pool(g, rows, config.pooling);
    let mut assoc = h;
    if config.uses_synergies() {
        // S = Σ_k v_k ;  diff_j = S − v_j ;  c^(p) = mean_j(v_j ∘ diff_j^(p−1))
        let mean = g.mean_rows(rows);
        let total = g.scale(mean, instance.input.len() as f32);
        let neg_rows = g.neg(rows);
        let diff = g.add_row_broadcast(neg_rows, total);
        let mut cur = rows;
        for _order in 2..=config.synergy_order {
            cur = g.hadamard(cur, diff);
            let c = g.mean_rows(cur);
            let cross = g.hadamard(c, h);
            assoc = g.add(assoc, cross);
        }
    }

    // Low-order association.
    let mut q = assoc;
    if !instance.low.is_empty() {
        let low_rows = g.gather(store, params.v, &instance.low);
        let o = pool(g, low_rows, config.pooling);
        q = g.add(q, o);
    }

    // User general preference.
    if config.use_user_term {
        let u = g.gather(store, params.u, &[instance.user]);
        q = g.add(q, u);
    }

    // BPR loss over the n_p (positive, negative) pairs.
    let w_pos = g.gather(store, params.w, &instance.targets);
    let w_neg = g.gather(store, params.w, &instance.negatives);
    let pos_scores = g.matmul_transposed(q, w_pos);
    let neg_scores = g.matmul_transposed(q, w_neg);
    let margin = g.sub(pos_scores, neg_scores);
    let neg_margin = g.neg(margin);
    let pairwise = g.softplus(neg_margin);
    g.mean_all(pairwise)
}

fn pool(g: &mut Graph, rows: VarId, pooling: Pooling) -> VarId {
    match pooling {
        Pooling::Mean => g.mean_rows(rows),
        Pooling::Max => g.max_rows(rows),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HamConfig, HamVariant};
    use crate::model::HamModel;
    use crate::trainer::HamParams;
    use ham_autograd::gradcheck::check_gradient;

    fn setup(config: HamConfig) -> HamParams {
        let model = HamModel::new(3, 10, config, 23);
        HamParams::from_model(&model)
    }

    fn batch() -> Vec<PreparedInstance> {
        vec![
            PreparedInstance {
                user: 0,
                input: vec![1, 2, 3, 4],
                low: vec![3, 4],
                targets: vec![5, 6],
                negatives: vec![7, 8],
            },
            PreparedInstance {
                user: 1,
                input: vec![0, 2, 4, 6],
                low: vec![4, 6],
                targets: vec![8, 9],
                negatives: vec![1, 3],
            },
        ]
    }

    #[test]
    fn synergy_model_gradients_pass_finite_difference_check() {
        let config = HamConfig::for_variant(HamVariant::HamSM).with_dimensions(6, 4, 2, 2, 3);
        let mut params = setup(config);
        let instances = batch();

        let (grads, _) = batch_gradients(&params, &instances, &config);
        for id in [params.u, params.v, params.w] {
            let analytic = grads.to_dense(id, params.store.value(id));
            let ids = (params.u, params.v, params.w);
            let report = check_gradient(&mut params.store, id, &analytic, 18, 5e-3, |store| {
                let p = HamParams { store: store.clone(), u: ids.0, v: ids.1, w: ids.2 };
                let mut g = Graph::new();
                let losses: Vec<VarId> = instances.iter().map(|i| instance_loss(&mut g, &p, i, &config)).collect();
                let stacked = g.concat_rows(&losses);
                let l = g.mean_all(stacked);
                g.value(l).get(0, 0)
            });
            assert!(report.passes(2e-2), "finite-difference check failed: {report:?}");
        }
    }

    #[test]
    fn loss_decreases_along_the_negative_gradient() {
        let config = HamConfig::for_variant(HamVariant::HamSM).with_dimensions(8, 4, 2, 2, 2);
        let mut params = setup(config);
        let instances = batch();
        let (grads, loss_before) = batch_gradients(&params, &instances, &config);
        // take a small explicit gradient step on every parameter
        for id in [params.u, params.v, params.w] {
            let dense = grads.to_dense(id, params.store.value(id));
            params.store.value_mut(id).axpy(-0.05, &dense);
        }
        let (_, loss_after) = batch_gradients(&params, &instances, &config);
        assert!(loss_after < loss_before, "loss should drop: {loss_before} -> {loss_after}");
    }

    #[test]
    fn higher_synergy_order_changes_the_loss_surface() {
        let base = HamConfig::for_variant(HamVariant::HamSM).with_dimensions(8, 4, 2, 2, 2);
        let deeper = HamConfig { synergy_order: 4, ..base };
        let params = setup(base);
        let (_, loss_p2) = batch_gradients(&params, &batch(), &base);
        let (_, loss_p4) = batch_gradients(&params, &batch(), &deeper);
        assert!((loss_p2 - loss_p4).abs() > 1e-9, "synergy order should affect the objective");
    }
}
