//! The BPR objective of HAM expressed on the `ham-autograd` tape.
//!
//! This is the reference trainer: it supports every HAM variant including the
//! synergy/latent-cross models (Eq. 5–6). Uniform mini-batches build **one
//! tape per block** of [`TRAIN_BLOCK`] instances — every window of the block
//! is gathered at once, pooled with the blocked pooling ops
//! ([`Graph::mean_pool_blocks`] / [`Graph::max_pool_blocks`]), and all
//! (positive, negative) pairs are scored through one `repeat_rows` +
//! `dot_rows` pair of nodes — so the tape length is independent of the batch
//! size instead of linear in it. A batch of one instance takes the exact
//! legacy per-instance graph ([`batch_gradients_reference`]), which also
//! remains the fallback for non-uniform batches and the target of the
//! finite-difference gradient checks.

use super::{uniform_shapes, HamParams, PreparedInstance, TRAIN_BLOCK};
use crate::config::HamConfig;
use ham_autograd::{GradStore, Graph, VarId};
use ham_tensor::Pooling;

/// Computes the gradients and the mean loss of one mini-batch, building one
/// batched tape per block of uniform instances.
pub(crate) fn batch_gradients(params: &HamParams, batch: &[PreparedInstance], config: &HamConfig) -> (GradStore, f32) {
    assert!(!batch.is_empty(), "batch_gradients: batch must not be empty");
    if batch.len() == 1 || !uniform_shapes(batch) {
        return batch_gradients_reference(params, batch, config);
    }
    let batch_scale = 1.0f32 / batch.len() as f32;
    let mut grads = GradStore::new();
    let mut loss = 0.0f64;
    for block in batch.chunks(TRAIN_BLOCK) {
        let (block_grads, block_loss) = block_gradients(params, block, config, batch_scale);
        grads.merge(block_grads);
        loss += block_loss;
    }
    (grads, loss as f32)
}

/// The legacy path: one per-instance subgraph per batch member, stacked and
/// averaged. Reference for the batched tape and the finite-difference checks.
pub(crate) fn batch_gradients_reference(
    params: &HamParams,
    batch: &[PreparedInstance],
    config: &HamConfig,
) -> (GradStore, f32) {
    assert!(!batch.is_empty(), "batch_gradients: batch must not be empty");
    let mut g = Graph::new();
    let mut instance_losses: Vec<VarId> = Vec::with_capacity(batch.len());

    for instance in batch {
        let loss = instance_loss(&mut g, params, instance, config);
        instance_losses.push(loss);
    }

    let stacked = g.concat_rows(&instance_losses);
    let batch_loss = g.mean_all(stacked);
    let loss_value = g.value(batch_loss).get(0, 0);
    (g.backward(batch_loss), loss_value)
}

/// Gradients of one uniform block of a larger batch on a single batched tape
/// (the threaded trainer computes blocks in parallel and merges them in
/// block order). `batch_scale` is `1 / total batch size`.
///
/// Returns the block's contribution to the batch mean loss.
pub(crate) fn block_gradients(
    params: &HamParams,
    block: &[PreparedInstance],
    config: &HamConfig,
    batch_scale: f32,
) -> (GradStore, f64) {
    let mut g = Graph::new();
    let loss = block_loss(&mut g, params, block, config, batch_scale);
    let value = g.value(loss).get(0, 0) as f64;
    (g.backward(loss), value)
}

/// Builds the whole block's loss on the tape: one gather per embedding role,
/// blocked pooling, and pair scores via `repeat_rows` + `dot_rows`. The node
/// count is constant in the block size.
fn block_loss(
    g: &mut Graph,
    params: &HamParams,
    block: &[PreparedInstance],
    config: &HamConfig,
    batch_scale: f32,
) -> VarId {
    let store = &params.store;
    let n_h = block[0].input.len();
    let n_l = block[0].low.len();
    let n_p = block[0].targets.len();

    // High-order association: pooled window embeddings (h), optionally
    // combined with the recursive synergies through the latent cross.
    let flat_inputs: Vec<usize> = block.iter().flat_map(|i| i.input.iter().copied()).collect();
    let rows = g.gather(store, params.v, &flat_inputs);
    let h = pool_blocks(g, rows, n_h, config.pooling);
    let mut assoc = h;
    if config.uses_synergies() {
        // S = Σ_k v_k ;  diff_j = S − v_j ;  c^(p) = mean_j(v_j ∘ diff_j^(p−1)),
        // per block of n_h window rows.
        let mean = g.mean_pool_blocks(rows, n_h);
        let total = g.scale(mean, n_h as f32);
        let repeated = g.repeat_rows(total, n_h);
        let neg_rows = g.neg(rows);
        let diff = g.add(neg_rows, repeated);
        let mut cur = rows;
        for _order in 2..=config.synergy_order {
            cur = g.hadamard(cur, diff);
            let c = g.mean_pool_blocks(cur, n_h);
            let cross = g.hadamard(c, h);
            assoc = g.add(assoc, cross);
        }
    }

    // Low-order association.
    let mut q = assoc;
    if n_l > 0 {
        let flat_lows: Vec<usize> = block.iter().flat_map(|i| i.low.iter().copied()).collect();
        let low_rows = g.gather(store, params.v, &flat_lows);
        let o = pool_blocks(g, low_rows, n_l, config.pooling);
        q = g.add(q, o);
    }

    // User general preference.
    if config.use_user_term {
        let users: Vec<usize> = block.iter().map(|i| i.user).collect();
        let u = g.gather(store, params.u, &users);
        q = g.add(q, u);
    }

    // BPR loss over all (positive, negative) pairs of the block: expand each
    // query row to its n_p pairs, score with row-wise dots.
    let flat_targets: Vec<usize> = block.iter().flat_map(|i| i.targets.iter().copied()).collect();
    let flat_negatives: Vec<usize> = block.iter().flat_map(|i| i.negatives.iter().copied()).collect();
    let w_pos = g.gather(store, params.w, &flat_targets);
    let w_neg = g.gather(store, params.w, &flat_negatives);
    let expanded = g.repeat_rows(q, n_p);
    let pos_scores = g.dot_rows(expanded, w_pos);
    let neg_scores = g.dot_rows(expanded, w_neg);
    let margin = g.sub(pos_scores, neg_scores);
    let neg_margin = g.neg(margin);
    let pairwise = g.softplus(neg_margin);
    let total = g.sum_all(pairwise);
    g.scale(total, batch_scale / n_p as f32)
}

/// Builds the loss of a single sliding-window instance on the tape and
/// returns its `1 x 1` node (the legacy per-instance subgraph).
fn instance_loss(g: &mut Graph, params: &HamParams, instance: &PreparedInstance, config: &HamConfig) -> VarId {
    let store = &params.store;

    // High-order association: pooled window embedding (h), optionally combined
    // with the recursive synergies through the latent cross (s).
    let rows = g.gather(store, params.v, &instance.input);
    let h = pool(g, rows, config.pooling);
    let mut assoc = h;
    if config.uses_synergies() {
        // S = Σ_k v_k ;  diff_j = S − v_j ;  c^(p) = mean_j(v_j ∘ diff_j^(p−1))
        let mean = g.mean_rows(rows);
        let total = g.scale(mean, instance.input.len() as f32);
        let neg_rows = g.neg(rows);
        let diff = g.add_row_broadcast(neg_rows, total);
        let mut cur = rows;
        for _order in 2..=config.synergy_order {
            cur = g.hadamard(cur, diff);
            let c = g.mean_rows(cur);
            let cross = g.hadamard(c, h);
            assoc = g.add(assoc, cross);
        }
    }

    // Low-order association.
    let mut q = assoc;
    if !instance.low.is_empty() {
        let low_rows = g.gather(store, params.v, &instance.low);
        let o = pool(g, low_rows, config.pooling);
        q = g.add(q, o);
    }

    // User general preference.
    if config.use_user_term {
        let u = g.gather(store, params.u, &[instance.user]);
        q = g.add(q, u);
    }

    // BPR loss over the n_p (positive, negative) pairs.
    let w_pos = g.gather(store, params.w, &instance.targets);
    let w_neg = g.gather(store, params.w, &instance.negatives);
    let pos_scores = g.matmul_transposed(q, w_pos);
    let neg_scores = g.matmul_transposed(q, w_neg);
    let margin = g.sub(pos_scores, neg_scores);
    let neg_margin = g.neg(margin);
    let pairwise = g.softplus(neg_margin);
    g.mean_all(pairwise)
}

fn pool(g: &mut Graph, rows: VarId, pooling: Pooling) -> VarId {
    match pooling {
        Pooling::Mean => g.mean_rows(rows),
        Pooling::Max => g.max_rows(rows),
    }
}

fn pool_blocks(g: &mut Graph, rows: VarId, block: usize, pooling: Pooling) -> VarId {
    match pooling {
        Pooling::Mean => g.mean_pool_blocks(rows, block),
        Pooling::Max => g.max_pool_blocks(rows, block),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HamConfig, HamVariant};
    use crate::model::HamModel;
    use crate::trainer::HamParams;
    use ham_autograd::gradcheck::check_gradient;

    fn setup(config: HamConfig) -> HamParams {
        let model = HamModel::new(3, 10, config, 23);
        HamParams::from_model(&model)
    }

    fn batch() -> Vec<PreparedInstance> {
        vec![
            PreparedInstance {
                user: 0,
                input: vec![1, 2, 3, 4],
                low: vec![3, 4],
                targets: vec![5, 6],
                negatives: vec![7, 8],
            },
            PreparedInstance {
                user: 1,
                input: vec![0, 2, 4, 6],
                low: vec![4, 6],
                targets: vec![8, 9],
                negatives: vec![1, 3],
            },
        ]
    }

    /// A uniform batch long enough to span more than one tape block.
    fn large_batch() -> Vec<PreparedInstance> {
        let mut out = Vec::new();
        for rep in 0..(TRAIN_BLOCK + 5) {
            for base in batch() {
                let shift = |items: &[usize]| items.iter().map(|&x| (x + rep) % 10).collect::<Vec<_>>();
                out.push(PreparedInstance {
                    user: (base.user + rep) % 3,
                    input: shift(&base.input),
                    low: shift(&base.low),
                    targets: shift(&base.targets),
                    negatives: shift(&base.negatives),
                });
            }
        }
        out
    }

    fn max_param_diff(a: &GradStore, b: &GradStore, params: &HamParams) -> f32 {
        let mut max_diff = 0.0f32;
        for id in [params.u, params.v, params.w] {
            let da = a.to_dense(id, params.store.value(id));
            let db = b.to_dense(id, params.store.value(id));
            for (x, y) in da.as_slice().iter().zip(db.as_slice()) {
                max_diff = max_diff.max((x - y).abs());
            }
        }
        max_diff
    }

    #[test]
    fn synergy_model_gradients_pass_finite_difference_check() {
        let config = HamConfig::for_variant(HamVariant::HamSM).with_dimensions(6, 4, 2, 2, 3);
        let mut params = setup(config);
        let instances = batch();

        let (grads, _) = batch_gradients(&params, &instances, &config);
        for id in [params.u, params.v, params.w] {
            let analytic = grads.to_dense(id, params.store.value(id));
            let ids = (params.u, params.v, params.w);
            let report = check_gradient(&mut params.store, id, &analytic, 18, 5e-3, |store| {
                let p = HamParams { store: store.clone(), u: ids.0, v: ids.1, w: ids.2 };
                let mut g = Graph::new();
                let losses: Vec<VarId> = instances.iter().map(|i| instance_loss(&mut g, &p, i, &config)).collect();
                let stacked = g.concat_rows(&losses);
                let l = g.mean_all(stacked);
                g.value(l).get(0, 0)
            });
            assert!(report.passes(2e-2), "finite-difference check failed: {report:?}");
        }
    }

    #[test]
    fn batched_tape_matches_per_instance_reference() {
        for (variant, order) in
            [(HamVariant::HamSM, 3), (HamVariant::HamSX, 2), (HamVariant::HamM, 1), (HamVariant::HamX, 1)]
        {
            let config = HamConfig::for_variant(variant).with_dimensions(6, 4, 2, 2, order);
            let params = setup(config);
            for instances in [batch(), large_batch()] {
                let (fast, fast_loss) = batch_gradients(&params, &instances, &config);
                let (reference, ref_loss) = batch_gradients_reference(&params, &instances, &config);
                assert!(
                    (fast_loss - ref_loss).abs() < 1e-5,
                    "{variant:?} (b={}) loss: {fast_loss} vs {ref_loss}",
                    instances.len()
                );
                let diff = max_param_diff(&fast, &reference, &params);
                assert!(diff < 1e-5, "{variant:?} (b={}) batched-tape gradients diverged: {diff}", instances.len());
            }
        }
    }

    #[test]
    fn batched_tape_handles_ablations() {
        for variant in [HamVariant::HamSMNoLowOrder, HamVariant::HamSMNoUser] {
            let mut config = HamConfig::for_variant(variant).with_dimensions(6, 4, 2, 2, 2);
            if matches!(variant, HamVariant::HamSMNoLowOrder) {
                config.n_l = 0;
            }
            let params = setup(config);
            let instances: Vec<PreparedInstance> = batch()
                .into_iter()
                .map(|mut i| {
                    if config.n_l == 0 {
                        i.low.clear();
                    }
                    i
                })
                .collect();
            let (fast, _) = batch_gradients(&params, &instances, &config);
            let (reference, _) = batch_gradients_reference(&params, &instances, &config);
            let diff = max_param_diff(&fast, &reference, &params);
            assert!(diff < 1e-5, "{variant:?} ablated batched tape diverged: {diff}");
            if matches!(variant, HamVariant::HamSMNoUser) {
                assert!(!fast.contains(params.u), "ablated user term must not receive gradients");
            }
        }
    }

    #[test]
    fn single_instance_batch_takes_the_reference_path_bit_for_bit() {
        let config = HamConfig::for_variant(HamVariant::HamSM).with_dimensions(6, 4, 2, 2, 2);
        let params = setup(config);
        let one = vec![batch().remove(0)];
        let (fast, fast_loss) = batch_gradients(&params, &one, &config);
        let (reference, ref_loss) = batch_gradients_reference(&params, &one, &config);
        assert_eq!(fast_loss.to_bits(), ref_loss.to_bits());
        for id in [params.u, params.v, params.w] {
            let a = fast.to_dense(id, params.store.value(id));
            let b = reference.to_dense(id, params.store.value(id));
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "batch-of-1 autograd gradients must be bit-identical");
            }
        }
    }

    #[test]
    fn loss_decreases_along_the_negative_gradient() {
        let config = HamConfig::for_variant(HamVariant::HamSM).with_dimensions(8, 4, 2, 2, 2);
        let mut params = setup(config);
        let instances = batch();
        let (grads, loss_before) = batch_gradients(&params, &instances, &config);
        // take a small explicit gradient step on every parameter
        for id in [params.u, params.v, params.w] {
            let dense = grads.to_dense(id, params.store.value(id));
            params.store.value_mut(id).axpy(-0.05, &dense);
        }
        let (_, loss_after) = batch_gradients(&params, &instances, &config);
        assert!(loss_after < loss_before, "loss should drop: {loss_before} -> {loss_after}");
    }

    #[test]
    fn higher_synergy_order_changes_the_loss_surface() {
        let base = HamConfig::for_variant(HamVariant::HamSM).with_dimensions(8, 4, 2, 2, 2);
        let deeper = HamConfig { synergy_order: 4, ..base };
        let params = setup(base);
        let (_, loss_p2) = batch_gradients(&params, &batch(), &base);
        let (_, loss_p4) = batch_gradients(&params, &batch(), &deeper);
        assert!((loss_p2 - loss_p4).abs() > 1e-9, "synergy order should affect the objective");
    }
}
