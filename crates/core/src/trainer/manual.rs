//! Analytic (manual) gradients of the BPR objective for the pooling-only HAM
//! variants.
//!
//! For one training pair (positive target `j`, sampled negative `k`) with
//! query vector `q = u_i + h + o` and margin `x = q·w_j − q·w_k`, the BPR loss
//! is `softplus(−x)` and its gradients are
//!
//! ```text
//! ∂L/∂w_j =  g·q        ∂L/∂w_k = −g·q        with g = σ(x) − 1
//! ∂L/∂q   =  g·(w_j − w_k)
//! ```
//!
//! `∂L/∂q` is then routed to the user embedding and — through the pooling
//! operator — to the input item embeddings (`1/n_h` per window item for mean
//! pooling; to the per-dimension arg-max item for max pooling).
//!
//! This path only supports `synergy_order == 1`; the synergy variants use the
//! autograd path, against which these gradients are verified in the tests
//! below.

use super::{HamParams, PreparedInstance};
use crate::config::HamConfig;
use ham_autograd::GradStore;
use ham_tensor::matrix::dot;
use ham_tensor::ops::{log_sigmoid, sigmoid_scalar};
use ham_tensor::pool::max_pool_rows;
use ham_tensor::{Matrix, Pooling};

/// Computes the gradients and the mean loss of one mini-batch.
///
/// # Panics
/// Panics if the configuration uses synergies (`synergy_order >= 2`);
/// those variants must use [`super::autograd_ref::batch_gradients`].
pub(crate) fn batch_gradients(params: &HamParams, batch: &[PreparedInstance], config: &HamConfig) -> (GradStore, f32) {
    assert!(!config.uses_synergies(), "manual gradients only support synergy_order == 1; use the autograd trainer");
    assert!(!batch.is_empty(), "batch_gradients: batch must not be empty");

    let u_mat = params.store.value(params.u);
    let v_mat = params.store.value(params.v);
    let w_mat = params.store.value(params.w);
    let d = config.d;

    let mut grads = GradStore::new();
    let mut total_loss = 0.0f64;
    let batch_scale = 1.0f32 / batch.len() as f32;

    // Scratch buffers reused across every instance and pair of the batch:
    // the query `q`, the accumulated ∂L/∂q, and a row buffer for routing
    // max-pooling gradients. No per-pair heap allocation happens below —
    // W-row gradients flow through `GradStore::accumulate_scaled_row`
    // straight from `q`.
    let mut q = vec![0.0f32; d];
    let mut dq = vec![0.0f32; d];
    let mut row_scratch = vec![0.0f32; d];

    for instance in batch {
        let high_rows = v_mat.gather_rows(&instance.input);
        let (h, high_argmax) = pool_with_argmax(&high_rows, config.pooling);
        let (o, low_rows, low_argmax) = if instance.low.is_empty() {
            (vec![0.0f32; d], None, None)
        } else {
            let rows = v_mat.gather_rows(&instance.low);
            let (pooled, argmax) = pool_with_argmax(&rows, config.pooling);
            (pooled, Some(rows), Some(argmax))
        };

        // q = u + h + o (respecting ablations)
        q.copy_from_slice(&h);
        for (qi, oi) in q.iter_mut().zip(&o) {
            *qi += oi;
        }
        if config.use_user_term {
            for (qi, ui) in q.iter_mut().zip(u_mat.row(instance.user)) {
                *qi += ui;
            }
        }

        let pair_scale = batch_scale / instance.targets.len() as f32;
        dq.fill(0.0);
        let mut instance_loss = 0.0f32;

        for (&pos, &neg) in instance.targets.iter().zip(&instance.negatives) {
            let w_pos = w_mat.row(pos);
            let w_neg = w_mat.row(neg);
            let x = dot(&q, w_pos) - dot(&q, w_neg);
            instance_loss += -log_sigmoid(x) / instance.targets.len() as f32;
            let g = (sigmoid_scalar(x) - 1.0) * pair_scale;

            // ∂L/∂w_pos = g·q and ∂L/∂w_neg = −g·q, accumulated in place.
            grads.accumulate_scaled_row(params.w, pos, &q, g);
            grads.accumulate_scaled_row(params.w, neg, &q, -g);

            // ∂L/∂q accumulated across the n_p pairs
            for c in 0..d {
                dq[c] += g * (w_pos[c] - w_neg[c]);
            }
        }
        total_loss += instance_loss as f64;

        // Route ∂L/∂q to the user embedding.
        if config.use_user_term {
            grads.accumulate_scaled_row(params.u, instance.user, &dq, 1.0);
        }

        // Route ∂L/∂q through the pooling of the high-order window.
        route_pooling_gradient(
            &mut grads,
            params,
            &instance.input,
            &high_rows,
            &high_argmax,
            &dq,
            config.pooling,
            &mut row_scratch,
        );
        // … and of the low-order window.
        if let (Some(rows), Some(argmax)) = (low_rows.as_ref(), low_argmax.as_ref()) {
            route_pooling_gradient(
                &mut grads,
                params,
                &instance.low,
                rows,
                argmax,
                &dq,
                config.pooling,
                &mut row_scratch,
            );
        }
    }

    (grads, (total_loss / batch.len() as f64) as f32)
}

/// Pools rows and returns the per-dimension arg-max (unused for mean pooling).
fn pool_with_argmax(rows: &Matrix, pooling: Pooling) -> (Vec<f32>, Vec<usize>) {
    match pooling {
        Pooling::Mean => (ham_tensor::pool::mean_pool_rows(rows), Vec::new()),
        Pooling::Max => max_pool_rows(rows),
    }
}

/// Distributes the pooled-vector gradient `dq` back onto the item embeddings
/// of `window`, reusing `row_scratch` (length `d`) instead of allocating.
#[allow(clippy::too_many_arguments)]
fn route_pooling_gradient(
    grads: &mut GradStore,
    params: &HamParams,
    window: &[usize],
    rows: &Matrix,
    argmax: &[usize],
    dq: &[f32],
    pooling: Pooling,
    row_scratch: &mut [f32],
) {
    match pooling {
        Pooling::Mean => {
            // Every window item receives dq / n; the scale folds into the
            // accumulate call, so no scaled copy of dq is materialised.
            let scale = 1.0 / rows.rows() as f32;
            for &item in window {
                grads.accumulate_scaled_row(params.v, item, dq, scale);
            }
        }
        Pooling::Max => {
            // Each output dimension receives its gradient only at the row
            // that attained the maximum. Group dimensions by winning row so
            // each distinct winner gets one accumulate call.
            for (winner_row, &item) in window.iter().enumerate() {
                let mut any = false;
                row_scratch.fill(0.0);
                for (c, &w) in argmax.iter().enumerate() {
                    if w == winner_row && dq[c] != 0.0 {
                        row_scratch[c] = dq[c];
                        any = true;
                    }
                }
                if any {
                    grads.accumulate_scaled_row(params.v, item, row_scratch, 1.0);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HamConfig, HamVariant};
    use crate::model::HamModel;
    use crate::trainer::{autograd_ref, HamParams};

    fn setup(variant: HamVariant, pooling_dims: (usize, usize, usize, usize)) -> (HamParams, HamConfig) {
        let (d, n_h, n_l, n_p) = pooling_dims;
        let config = HamConfig::for_variant(variant).with_dimensions(d, n_h, n_l, n_p, 1);
        let model = HamModel::new(4, 12, config, 17);
        (HamParams::from_model(&model), config)
    }

    fn example_batch() -> Vec<PreparedInstance> {
        vec![
            PreparedInstance {
                user: 0,
                input: vec![1, 2, 3, 4],
                low: vec![3, 4],
                targets: vec![5, 6],
                negatives: vec![7, 8],
            },
            PreparedInstance {
                user: 2,
                input: vec![9, 1, 0, 2],
                low: vec![0, 2],
                targets: vec![3, 10],
                negatives: vec![11, 4],
            },
            PreparedInstance {
                user: 3,
                input: vec![6, 6, 7, 8],
                low: vec![7, 8],
                targets: vec![9, 0],
                negatives: vec![1, 2],
            },
        ]
    }

    fn max_param_diff(a: &GradStore, b: &GradStore, params: &HamParams) -> f32 {
        let mut max_diff = 0.0f32;
        for id in [params.u, params.v, params.w] {
            let da = a.to_dense(id, params.store.value(id));
            let db = b.to_dense(id, params.store.value(id));
            for (x, y) in da.as_slice().iter().zip(db.as_slice()) {
                max_diff = max_diff.max((x - y).abs());
            }
        }
        max_diff
    }

    #[test]
    fn manual_matches_autograd_for_mean_pooling() {
        let (params, config) = setup(HamVariant::HamM, (8, 4, 2, 2));
        let batch = example_batch();
        let (manual_grads, manual_loss) = batch_gradients(&params, &batch, &config);
        let (auto_grads, auto_loss) = autograd_ref::batch_gradients(&params, &batch, &config);
        assert!((manual_loss - auto_loss).abs() < 1e-5, "loss mismatch: {manual_loss} vs {auto_loss}");
        let diff = max_param_diff(&manual_grads, &auto_grads, &params);
        assert!(diff < 1e-5, "gradient mismatch between manual and autograd paths: {diff}");
    }

    #[test]
    fn manual_matches_autograd_for_max_pooling() {
        let (params, config) = setup(HamVariant::HamX, (8, 4, 2, 2));
        let batch = example_batch();
        let (manual_grads, _) = batch_gradients(&params, &batch, &config);
        let (auto_grads, _) = autograd_ref::batch_gradients(&params, &batch, &config);
        let diff = max_param_diff(&manual_grads, &auto_grads, &params);
        assert!(diff < 1e-5, "max-pooling gradient mismatch: {diff}");
    }

    #[test]
    fn ablated_user_term_receives_no_gradient() {
        let (params, config) = setup(HamVariant::HamSMNoUser, (8, 4, 2, 2));
        // strip synergies so the manual path applies
        let config = HamConfig { synergy_order: 1, ..config };
        let batch = example_batch();
        let (grads, _) = batch_gradients(&params, &batch, &config);
        assert!(!grads.contains(params.u), "user embedding must not receive gradients when ablated");
        assert!(grads.contains(params.v) && grads.contains(params.w));
    }

    #[test]
    fn loss_is_positive_and_finite() {
        let (params, config) = setup(HamVariant::HamM, (8, 4, 2, 2));
        let (_, loss) = batch_gradients(&params, &example_batch(), &config);
        assert!(loss.is_finite() && loss > 0.0);
    }

    #[test]
    #[should_panic(expected = "synergy_order == 1")]
    fn synergy_config_is_rejected() {
        let config = HamConfig::for_variant(HamVariant::HamSM).with_dimensions(8, 4, 2, 2, 2);
        let model = HamModel::new(2, 10, config, 1);
        let params = HamParams::from_model(&model);
        let _ = batch_gradients(&params, &example_batch(), &config);
    }
}
