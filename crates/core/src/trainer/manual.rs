//! Analytic (manual) gradients of the BPR objective for the pooling-only HAM
//! variants — mini-batched through the GEMM kernel tiers.
//!
//! For one training pair (positive target `j`, sampled negative `k`) with
//! query vector `q = u_i + h + o` and margin `x = q·w_j − q·w_k`, the BPR loss
//! is `softplus(−x)` and its gradients are
//!
//! ```text
//! ∂L/∂w_j =  g·q        ∂L/∂w_k = −g·q        with g = σ(x) − 1
//! ∂L/∂q   =  g·(w_j − w_k)
//! ```
//!
//! `∂L/∂q` is then routed to the user embedding and — through the pooling
//! operator — to the input item embeddings (`1/n_h` per window item for mean
//! pooling; to the per-dimension arg-max item for max pooling).
//!
//! ## Batched fast path
//!
//! [`batch_gradients`] processes a uniform mini-batch in blocks of
//! [`MANUAL_BLOCK`] instances. Per block it builds the query matrix `Q` once,
//! gathers the block's **unique** candidate items into `C`, scores every
//! (positive, negative) pair with one
//! [`matmul_transposed_into`](ham_tensor::kernels::matmul_transposed_into)
//! (`Q·Cᵀ`), and accumulates both `∂L/∂C` and `∂L/∂Q` with the rank-1
//! [`axpy_rows`](ham_tensor::kernels::axpy_rows) scatter kernel — candidate
//! rows repeated across a block coalesce into one gradient row before the
//! sparse Adam step sees them. A batch (or block) of **one** instance takes
//! the exact per-instance reference path, so `batch_size = 1` training is
//! bit-identical to the legacy instance-at-a-time loop
//! ([`batch_gradients_reference`], against which the GEMM path is pinned at
//! ≤ 1e-5 by the batch-size-invariance proptests in `trainer::tests`).
//!
//! This path only supports `synergy_order == 1`; the synergy variants use the
//! autograd path, against which these gradients are verified in the tests
//! below.

use super::{uniform_shapes, HamParams, PreparedInstance, MANUAL_BLOCK};
use crate::config::HamConfig;
use ham_autograd::GradStore;
use ham_tensor::kernels;
use ham_tensor::matrix::dot;
use ham_tensor::ops::{log_sigmoid, sigmoid_scalar};
use ham_tensor::{Matrix, Pooling};

/// Bits of a packed dedup key reserved for the slot index; items use the
/// remaining high bits, so keys sort by item first.
const SLOT_BITS: u32 = 24;

/// Packs an `(item, slot)` draw into one sortable `u64` key.
#[inline]
fn dedup_key(item: usize, slot: u32) -> u64 {
    debug_assert!(slot < (1 << SLOT_BITS), "dedup slot overflow");
    debug_assert!((item as u64) < (1 << (64 - SLOT_BITS)), "dedup item overflow");
    ((item as u64) << SLOT_BITS) | slot as u64
}

/// Sort-based dedup of packed `(item, slot)` draws (see [`dedup_key`]):
/// assigns one column per distinct item (ascending item order) and records
/// each slot's column. Returns the distinct items; `col_of_slot[slot]`
/// indexes into them. No hashing — the per-chunk cost is one
/// `sort_unstable` of a few hundred integers, independent of the catalogue
/// size.
fn dedup_columns(keyed: &mut [u64], col_of_slot: &mut [u32]) -> Vec<usize> {
    keyed.sort_unstable();
    let mut items: Vec<usize> = Vec::with_capacity(keyed.len());
    for &key in keyed.iter() {
        let item = (key >> SLOT_BITS) as usize;
        let slot = (key & ((1 << SLOT_BITS) - 1)) as usize;
        if items.last() != Some(&item) {
            items.push(item);
        }
        col_of_slot[slot] = (items.len() - 1) as u32;
    }
    items
}

/// Computes the gradients and the mean loss of one mini-batch, routing
/// uniform batches of more than one instance through the blocked GEMM path.
///
/// # Panics
/// Panics if the configuration uses synergies (`synergy_order >= 2`);
/// those variants must use [`super::autograd_ref::batch_gradients`].
pub(crate) fn batch_gradients(params: &HamParams, batch: &[PreparedInstance], config: &HamConfig) -> (GradStore, f32) {
    assert!(!config.uses_synergies(), "manual gradients only support synergy_order == 1; use the autograd trainer");
    assert!(!batch.is_empty(), "batch_gradients: batch must not be empty");
    let batch_scale = 1.0f32 / batch.len() as f32;
    let mut grads = GradStore::new();
    let mut loss = 0.0f64;
    if batch.len() > 1 && uniform_shapes(batch) {
        // Per-block stores merged in block order — the exact computation the
        // threaded trainer performs, so the thread count can never change
        // the result.
        for block in batch.chunks(MANUAL_BLOCK) {
            let (block_grads, block_loss) = block_gradients(params, block, config, batch_scale);
            grads.merge(block_grads);
            loss += block_loss;
        }
    } else {
        loss += reference_into(params, batch, config, batch_scale, &mut grads);
    }
    (grads, loss as f32)
}

/// The legacy per-instance gradient loop: scalar [`dot`] scores and
/// pair-by-pair accumulation. This is the reference the GEMM path is
/// verified against, and the exact path a batch of one instance takes.
pub(crate) fn batch_gradients_reference(
    params: &HamParams,
    batch: &[PreparedInstance],
    config: &HamConfig,
) -> (GradStore, f32) {
    assert!(!config.uses_synergies(), "manual gradients only support synergy_order == 1; use the autograd trainer");
    assert!(!batch.is_empty(), "batch_gradients: batch must not be empty");
    let batch_scale = 1.0f32 / batch.len() as f32;
    let mut grads = GradStore::new();
    let loss = reference_into(params, batch, config, batch_scale, &mut grads);
    (grads, loss as f32)
}

/// Gradients of one block of a larger batch into a fresh store (the threaded
/// trainer computes blocks in parallel and merges them in block order).
/// `batch_scale` is `1 / total batch size`, **not** `1 / block size`.
///
/// Returns the block's contribution to the batch mean loss.
pub(crate) fn block_gradients(
    params: &HamParams,
    block: &[PreparedInstance],
    config: &HamConfig,
    batch_scale: f32,
) -> (GradStore, f64) {
    let mut grads = GradStore::new();
    let loss = block_into(params, block, config, batch_scale, &mut grads);
    (grads, loss)
}

/// Accumulates one block's gradients into `grads`; single-instance blocks
/// take the bit-exact reference path instead of a 1-row GEMM.
fn block_into(
    params: &HamParams,
    block: &[PreparedInstance],
    config: &HamConfig,
    batch_scale: f32,
    grads: &mut GradStore,
) -> f64 {
    if block.len() == 1 {
        reference_into(params, block, config, batch_scale, grads)
    } else {
        gemm_block_into(params, block, config, batch_scale, grads)
    }
}

/// Score-GEMM tile width: instances per `Q·Cᵀ` product inside a gradient
/// chunk. `C` holds only the tile's unique candidate items, so a narrow tile
/// keeps the scored rectangle close to the pairs actually needed while the
/// GEMM still amortises the packed-panel walk over the tile's query rows.
const GEMM_TILE: usize = 8;

/// The chunked GEMM path: per [`GEMM_TILE`] instances one `Q·Cᵀ` score
/// product and two `axpy_rows` rank-1 scatters, accumulating straight into
/// chunk-level dense gradient matrices (`∂L/∂C` over the chunk's unique
/// candidates, `∂L/∂Q` per instance) — the sparse `GradStore` is touched
/// once per chunk, with duplicate rows already coalesced.
fn gemm_block_into(
    params: &HamParams,
    block: &[PreparedInstance],
    config: &HamConfig,
    batch_scale: f32,
    grads: &mut GradStore,
) -> f64 {
    // Per-chunk score-GEMM timing, resolved from the global telemetry handle
    // here (rather than threaded through the gradient call graph) so the
    // block functions keep their signatures; one registry lookup per chunk
    // of MANUAL_BLOCK instances when enabled, one atomic load when not.
    let gemm_timer = {
        let telemetry = ham_telemetry::global();
        telemetry.registry().map(|r| r.histogram("train_chunk_gemm_nanos"))
    };
    let mut gemm_nanos = 0u64;

    let u_mat = params.store.value(params.u);
    let v_mat = params.store.value(params.v);
    let w_mat = params.store.value(params.w);
    let d = config.d;
    let b = block.len();
    let n_p = block[0].targets.len();
    let has_low = !block[0].low.is_empty();
    let is_max = config.pooling == Pooling::Max;

    // Unique candidate items of the chunk: pair slot `2p` is pair `p`'s
    // positive, `2p + 1` its negative; `pair_cols[slot]` is the item's row in
    // the chunk's gradient matrix `dcand`. The same dedup is what coalesces
    // duplicate candidate rows before the sparse Adam update.
    let pairs = b * n_p;
    let mut keyed: Vec<u64> = Vec::with_capacity(2 * pairs);
    for (i, instance) in block.iter().enumerate() {
        for (t, (&pos, &neg)) in instance.targets.iter().zip(&instance.negatives).enumerate() {
            let pair = (i * n_p + t) as u32;
            keyed.push(dedup_key(pos, 2 * pair));
            keyed.push(dedup_key(neg, 2 * pair + 1));
        }
    }
    let mut pair_cols = vec![0u32; 2 * pairs];
    let items = dedup_columns(&mut keyed, &mut pair_cols);
    let unique = items.len();

    // The chunk's query matrix, one row per instance (h + o + u, exactly the
    // reference construction), with per-instance arg-max positions retained
    // for the max-pooling backward.
    let mut q = Matrix::zeros(b, d);
    let mut argmax_high = vec![0usize; if is_max { b * d } else { 0 }];
    let mut argmax_low = vec![0usize; if is_max && has_low { b * d } else { 0 }];
    let mut low_scratch = vec![0.0f32; d];
    for (i, instance) in block.iter().enumerate() {
        let q_row = q.row_mut(i);
        pool_window_into(v_mat, &instance.input, config.pooling, q_row, argmax_slice(&mut argmax_high, i, d));
        if has_low {
            pool_window_into(
                v_mat,
                &instance.low,
                config.pooling,
                &mut low_scratch,
                argmax_slice(&mut argmax_low, i, d),
            );
            for (qv, ov) in q_row.iter_mut().zip(&low_scratch) {
                *qv += ov;
            }
        }
        if config.use_user_term {
            for (qv, uv) in q_row.iter_mut().zip(u_mat.row(instance.user)) {
                *qv += uv;
            }
        }
    }

    // Chunk-level gradient accumulators: `dcand` coalesces every pair's
    // `±g·q` over the unique candidates, `dq` is ∂L/∂q per instance.
    let mut dcand = Matrix::zeros(unique, d);
    let mut dq = Matrix::zeros(b, d);
    let mut loss_sum = 0.0f64;

    // Tile scratch, reused across the chunk's tiles. The three tile
    // matrices round-trip through `from_vec`/`into_vec` so their capacity
    // survives the loop — the innermost loop performs no steady-state heap
    // allocation.
    let mut tile_cols: Vec<u32> = Vec::new();
    let mut c_buf: Vec<f32> = Vec::new();
    let mut q_buf: Vec<f32> = Vec::new();
    let mut score_buf: Vec<f32> = Vec::new();
    let mut dcand_rows = Vec::with_capacity(2 * GEMM_TILE * n_p);
    let mut dcand_scales = Vec::with_capacity(2 * GEMM_TILE * n_p);
    let mut dcand_src = Vec::with_capacity(2 * GEMM_TILE * n_p);
    let mut dq_rows = Vec::with_capacity(2 * GEMM_TILE * n_p);
    let mut dq_scales = Vec::with_capacity(2 * GEMM_TILE * n_p);
    let mut dq_src = Vec::with_capacity(2 * GEMM_TILE * n_p);

    let mut tile_start = 0usize;
    while tile_start < b {
        let tw = (b - tile_start).min(GEMM_TILE);

        // The tile's candidate set, as sorted unique chunk columns.
        tile_cols.clear();
        tile_cols.extend_from_slice(&pair_cols[2 * tile_start * n_p..2 * (tile_start + tw) * n_p]);
        tile_cols.sort_unstable();
        tile_cols.dedup();

        // Gather the tile's candidate rows and query rows, then score every
        // (instance, candidate) pair of the tile with one GEMM.
        c_buf.clear();
        for &cc in &tile_cols {
            c_buf.extend_from_slice(w_mat.row(items[cc as usize]));
        }
        let c_tile = Matrix::from_vec(tile_cols.len(), d, std::mem::take(&mut c_buf));
        q_buf.clear();
        q_buf.extend_from_slice(&q.as_slice()[tile_start * d..(tile_start + tw) * d]);
        let q_tile = Matrix::from_vec(tw, d, std::mem::take(&mut q_buf));
        score_buf.clear();
        score_buf.resize(tw * tile_cols.len(), 0.0);
        let mut scores = Matrix::from_vec(tw, tile_cols.len(), std::mem::take(&mut score_buf));
        let gemm_started = gemm_timer.is_some().then(std::time::Instant::now);
        kernels::matmul_transposed_into(&q_tile, &c_tile, &mut scores);
        if let Some(started) = gemm_started {
            gemm_nanos += started.elapsed().as_nanos() as u64;
        }

        // Pair pass: losses plus the scatter pattern for the rank-1 updates.
        dcand_rows.clear();
        dcand_scales.clear();
        dcand_src.clear();
        dq_rows.clear();
        dq_scales.clear();
        dq_src.clear();
        for local in 0..tw {
            let i = tile_start + local;
            let instance = &block[i];
            let pair_scale = batch_scale / instance.targets.len() as f32;
            let mut instance_loss = 0.0f32;
            for t in 0..n_p {
                let pair = i * n_p + t;
                let pc = pair_cols[2 * pair];
                let nc = pair_cols[2 * pair + 1];
                let ptc = tile_cols.binary_search(&pc).expect("tile candidate set covers its pairs");
                let ntc = tile_cols.binary_search(&nc).expect("tile candidate set covers its pairs");
                let x = scores.get(local, ptc) - scores.get(local, ntc);
                instance_loss += -log_sigmoid(x) / instance.targets.len() as f32;
                let g = (sigmoid_scalar(x) - 1.0) * pair_scale;
                // ∂L/∂w_pos = g·q_i, ∂L/∂w_neg = −g·q_i (chunk columns)
                dcand_rows.extend([pc as usize, nc as usize]);
                dcand_scales.extend([g, -g]);
                dcand_src.extend([i, i]);
                // ∂L/∂q_i += g·(w_pos − w_neg) (tile rows as sources)
                dq_rows.extend([i, i]);
                dq_scales.extend([g, -g]);
                dq_src.extend([ptc, ntc]);
            }
            loss_sum += instance_loss as f64;
        }

        // Rank-1 scatters for the tile, straight into the chunk matrices.
        kernels::axpy_rows(&mut dcand, &dcand_rows, &dcand_scales, &q, &dcand_src);
        kernels::axpy_rows(&mut dq, &dq_rows, &dq_scales, &c_tile, &dq_src);

        // Hand the tile buffers back for the next iteration.
        c_buf = c_tile.into_vec();
        q_buf = q_tile.into_vec();
        score_buf = scores.into_vec();
        tile_start += tw;
    }

    if let Some(timer) = &gemm_timer {
        timer.record(gemm_nanos);
    }

    // One coalesced sparse accumulation for W: `items` is duplicate-free.
    grads.accumulate_sparse(params.w, &items, &dcand);

    // Route ∂L/∂q to the user embedding.
    if config.use_user_term {
        for (i, instance) in block.iter().enumerate() {
            grads.accumulate_scaled_row(params.u, instance.user, dq.row(i), 1.0);
        }
    }

    // Route ∂L/∂q through the pooling operators onto V. Mean pooling takes
    // one more coalesced `axpy_rows` scatter (every window item of instance
    // `i` receives `dq_i / window len`, summed per unique item before the
    // sparse accumulation); max pooling routes per-dimension arg-max winners
    // per instance.
    if is_max {
        let mut row_scratch = vec![0.0f32; d];
        for (i, instance) in block.iter().enumerate() {
            let dq_row = dq.row(i);
            route_pooling_gradient(
                grads,
                params,
                &instance.input,
                argmax_slice(&mut argmax_high, i, d),
                dq_row,
                config.pooling,
                &mut row_scratch,
            );
            if has_low {
                route_pooling_gradient(
                    grads,
                    params,
                    &instance.low,
                    argmax_slice(&mut argmax_low, i, d),
                    dq_row,
                    config.pooling,
                    &mut row_scratch,
                );
            }
        }
    } else {
        let n_h = block[0].input.len();
        let n_l = block[0].low.len();
        let window_slots = b * (n_h + n_l);
        let mut keyed_windows: Vec<u64> = Vec::with_capacity(window_slots);
        let mut slot = 0u32;
        for instance in block {
            for &item in instance.input.iter().chain(&instance.low) {
                keyed_windows.push(dedup_key(item, slot));
                slot += 1;
            }
        }
        let mut window_cols = vec![0u32; window_slots];
        let window_items = dedup_columns(&mut keyed_windows, &mut window_cols);
        let high_scale = 1.0 / n_h as f32;
        let low_scale = if n_l > 0 { 1.0 / n_l as f32 } else { 0.0 };
        let mut dv = Matrix::zeros(window_items.len(), d);
        {
            let dv_data = dv.as_mut_slice();
            for i in 0..b {
                let dq_row = dq.row(i);
                let base = i * (n_h + n_l);
                for w in 0..n_h + n_l {
                    let col = window_cols[base + w] as usize;
                    let scale = if w < n_h { high_scale } else { low_scale };
                    kernels::axpy(&mut dv_data[col * d..(col + 1) * d], scale, dq_row);
                }
            }
        }
        grads.accumulate_sparse(params.v, &window_items, &dv);
    }

    loss_sum * batch_scale as f64
}

/// The legacy per-instance loop with an explicit `batch_scale` so it can
/// serve as a block of a larger batch. Returns the contribution to the
/// batch mean loss (`Σ instance losses · batch_scale`).
fn reference_into(
    params: &HamParams,
    instances: &[PreparedInstance],
    config: &HamConfig,
    batch_scale: f32,
    grads: &mut GradStore,
) -> f64 {
    let u_mat = params.store.value(params.u);
    let v_mat = params.store.value(params.v);
    let w_mat = params.store.value(params.w);
    let d = config.d;
    let is_max = config.pooling == Pooling::Max;

    let mut total_loss = 0.0f64;

    // Scratch buffers reused across every instance and pair: the query `q`,
    // the accumulated ∂L/∂q, the pooled low-order window, the max-pooling
    // arg-max positions and a row buffer for routing max-pooling gradients.
    // No per-pair heap allocation happens below — W-row gradients flow
    // through `GradStore::accumulate_scaled_row` straight from `q`.
    let mut q = vec![0.0f32; d];
    let mut dq = vec![0.0f32; d];
    let mut low_pooled = vec![0.0f32; d];
    let mut row_scratch = vec![0.0f32; d];
    let mut argmax_high = vec![0usize; if is_max { d } else { 0 }];
    let mut argmax_low = vec![0usize; if is_max { d } else { 0 }];

    for instance in instances {
        pool_window_into(v_mat, &instance.input, config.pooling, &mut q, &mut argmax_high);
        if !instance.low.is_empty() {
            pool_window_into(v_mat, &instance.low, config.pooling, &mut low_pooled, &mut argmax_low);
            for (qi, oi) in q.iter_mut().zip(&low_pooled) {
                *qi += oi;
            }
        }
        if config.use_user_term {
            for (qi, ui) in q.iter_mut().zip(u_mat.row(instance.user)) {
                *qi += ui;
            }
        }

        let pair_scale = batch_scale / instance.targets.len() as f32;
        dq.fill(0.0);
        let mut instance_loss = 0.0f32;

        for (&pos, &neg) in instance.targets.iter().zip(&instance.negatives) {
            let w_pos = w_mat.row(pos);
            let w_neg = w_mat.row(neg);
            let x = dot(&q, w_pos) - dot(&q, w_neg);
            instance_loss += -log_sigmoid(x) / instance.targets.len() as f32;
            let g = (sigmoid_scalar(x) - 1.0) * pair_scale;

            // ∂L/∂w_pos = g·q and ∂L/∂w_neg = −g·q, accumulated in place.
            grads.accumulate_scaled_row(params.w, pos, &q, g);
            grads.accumulate_scaled_row(params.w, neg, &q, -g);

            // ∂L/∂q accumulated across the n_p pairs
            for c in 0..d {
                dq[c] += g * (w_pos[c] - w_neg[c]);
            }
        }
        total_loss += instance_loss as f64;

        // Route ∂L/∂q to the user embedding.
        if config.use_user_term {
            grads.accumulate_scaled_row(params.u, instance.user, &dq, 1.0);
        }

        // Route ∂L/∂q through the pooling of the high-order window …
        route_pooling_gradient(grads, params, &instance.input, &argmax_high, &dq, config.pooling, &mut row_scratch);
        // … and of the low-order window.
        if !instance.low.is_empty() {
            route_pooling_gradient(grads, params, &instance.low, &argmax_low, &dq, config.pooling, &mut row_scratch);
        }
    }

    total_loss * batch_scale as f64
}

/// The length-`d` slice of a per-instance arg-max buffer (empty when max
/// pooling is not in use, so the mean-pooling path carries no buffer).
fn argmax_slice(buf: &mut [usize], instance: usize, d: usize) -> &mut [usize] {
    if buf.is_empty() {
        &mut []
    } else {
        &mut buf[instance * d..(instance + 1) * d]
    }
}

/// Pools the embeddings of `window` straight into `out` (no gathered-matrix
/// temporary): sum-then-scale for mean pooling — the exact accumulation
/// order of `mean_pool_rows` — or a strict-greater max with first-wins ties,
/// recording per-dimension arg-max window positions into `argmax`.
fn pool_window_into(v_mat: &Matrix, window: &[usize], pooling: Pooling, out: &mut [f32], argmax: &mut [usize]) {
    match pooling {
        Pooling::Mean => {
            out.fill(0.0);
            for &item in window {
                for (o, v) in out.iter_mut().zip(v_mat.row(item)) {
                    *o += v;
                }
            }
            let inv = 1.0 / window.len() as f32;
            for o in out.iter_mut() {
                *o *= inv;
            }
        }
        Pooling::Max => {
            out.copy_from_slice(v_mat.row(window[0]));
            argmax.fill(0);
            for (position, &item) in window.iter().enumerate().skip(1) {
                for (c, &v) in v_mat.row(item).iter().enumerate() {
                    if v > out[c] {
                        out[c] = v;
                        argmax[c] = position;
                    }
                }
            }
        }
    }
}

/// Distributes the pooled-vector gradient `dq` back onto the item embeddings
/// of `window`, reusing `row_scratch` (length `d`) instead of allocating.
fn route_pooling_gradient(
    grads: &mut GradStore,
    params: &HamParams,
    window: &[usize],
    argmax: &[usize],
    dq: &[f32],
    pooling: Pooling,
    row_scratch: &mut [f32],
) {
    match pooling {
        Pooling::Mean => {
            // Every window item receives dq / n; the scale folds into the
            // accumulate call, so no scaled copy of dq is materialised.
            let scale = 1.0 / window.len() as f32;
            for &item in window {
                grads.accumulate_scaled_row(params.v, item, dq, scale);
            }
        }
        Pooling::Max => {
            // Each output dimension receives its gradient only at the window
            // position that attained the maximum. Group dimensions by winning
            // position so each distinct winner gets one accumulate call.
            for (winner, &item) in window.iter().enumerate() {
                let mut any = false;
                row_scratch.fill(0.0);
                for (c, &w) in argmax.iter().enumerate() {
                    if w == winner && dq[c] != 0.0 {
                        row_scratch[c] = dq[c];
                        any = true;
                    }
                }
                if any {
                    grads.accumulate_scaled_row(params.v, item, row_scratch, 1.0);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HamConfig, HamVariant};
    use crate::model::HamModel;
    use crate::trainer::{autograd_ref, HamParams};

    fn setup(variant: HamVariant, pooling_dims: (usize, usize, usize, usize)) -> (HamParams, HamConfig) {
        let (d, n_h, n_l, n_p) = pooling_dims;
        let config = HamConfig::for_variant(variant).with_dimensions(d, n_h, n_l, n_p, 1);
        let model = HamModel::new(4, 12, config, 17);
        (HamParams::from_model(&model), config)
    }

    fn example_batch() -> Vec<PreparedInstance> {
        vec![
            PreparedInstance {
                user: 0,
                input: vec![1, 2, 3, 4],
                low: vec![3, 4],
                targets: vec![5, 6],
                negatives: vec![7, 8],
            },
            PreparedInstance {
                user: 2,
                input: vec![9, 1, 0, 2],
                low: vec![0, 2],
                targets: vec![3, 10],
                negatives: vec![11, 4],
            },
            PreparedInstance {
                user: 3,
                input: vec![6, 6, 7, 8],
                low: vec![7, 8],
                targets: vec![9, 0],
                negatives: vec![1, 2],
            },
        ]
    }

    /// A larger uniform batch (wraps the example instances with shifted ids)
    /// spanning more than one GEMM tile.
    fn large_batch() -> Vec<PreparedInstance> {
        batch_of_reps(14)
    }

    /// A batch spanning more than one gradient chunk (> MANUAL_BLOCK).
    fn huge_batch() -> Vec<PreparedInstance> {
        batch_of_reps(100)
    }

    fn batch_of_reps(reps: usize) -> Vec<PreparedInstance> {
        let mut batch = Vec::new();
        for rep in 0..reps {
            for base in example_batch() {
                let shift = |items: &[usize]| items.iter().map(|&x| (x + rep) % 12).collect::<Vec<_>>();
                batch.push(PreparedInstance {
                    user: (base.user + rep) % 4,
                    input: shift(&base.input),
                    low: shift(&base.low),
                    targets: shift(&base.targets),
                    negatives: shift(&base.negatives),
                });
            }
        }
        batch
    }

    fn max_param_diff(a: &GradStore, b: &GradStore, params: &HamParams) -> f32 {
        let mut max_diff = 0.0f32;
        for id in [params.u, params.v, params.w] {
            let da = a.to_dense(id, params.store.value(id));
            let db = b.to_dense(id, params.store.value(id));
            for (x, y) in da.as_slice().iter().zip(db.as_slice()) {
                max_diff = max_diff.max((x - y).abs());
            }
        }
        max_diff
    }

    #[test]
    fn manual_matches_autograd_for_mean_pooling() {
        let (params, config) = setup(HamVariant::HamM, (8, 4, 2, 2));
        let batch = example_batch();
        let (manual_grads, manual_loss) = batch_gradients(&params, &batch, &config);
        let (auto_grads, auto_loss) = autograd_ref::batch_gradients(&params, &batch, &config);
        assert!((manual_loss - auto_loss).abs() < 1e-5, "loss mismatch: {manual_loss} vs {auto_loss}");
        let diff = max_param_diff(&manual_grads, &auto_grads, &params);
        assert!(diff < 1e-5, "gradient mismatch between manual and autograd paths: {diff}");
    }

    #[test]
    fn manual_matches_autograd_for_max_pooling() {
        let (params, config) = setup(HamVariant::HamX, (8, 4, 2, 2));
        let batch = example_batch();
        let (manual_grads, _) = batch_gradients(&params, &batch, &config);
        let (auto_grads, _) = autograd_ref::batch_gradients(&params, &batch, &config);
        let diff = max_param_diff(&manual_grads, &auto_grads, &params);
        assert!(diff < 1e-5, "max-pooling gradient mismatch: {diff}");
    }

    #[test]
    fn manual_matches_autograd_beyond_one_gemm_block() {
        for variant in [HamVariant::HamM, HamVariant::HamX] {
            let (params, config) = setup(variant, (8, 4, 2, 2));
            let batch = large_batch();
            assert!(batch.len() > GEMM_TILE, "batch must span multiple GEMM tiles");
            let (manual_grads, manual_loss) = batch_gradients(&params, &batch, &config);
            let (auto_grads, auto_loss) = autograd_ref::batch_gradients(&params, &batch, &config);
            assert!((manual_loss - auto_loss).abs() < 1e-5, "{variant:?} loss: {manual_loss} vs {auto_loss}");
            let diff = max_param_diff(&manual_grads, &auto_grads, &params);
            assert!(diff < 1e-5, "{variant:?} manual/autograd mismatch at batch > 1 block: {diff}");
        }
    }

    #[test]
    fn gemm_path_matches_reference_path() {
        for variant in [HamVariant::HamM, HamVariant::HamX, HamVariant::HamSMNoUser] {
            let (params, config) = setup(variant, (8, 4, 2, 2));
            let config = HamConfig { synergy_order: 1, ..config };
            for batch in [example_batch(), large_batch()] {
                let (fast, fast_loss) = batch_gradients(&params, &batch, &config);
                let (reference, ref_loss) = batch_gradients_reference(&params, &batch, &config);
                assert!((fast_loss - ref_loss).abs() < 1e-5, "{variant:?} loss: {fast_loss} vs {ref_loss}");
                let diff = max_param_diff(&fast, &reference, &params);
                assert!(diff < 1e-5, "{variant:?} GEMM vs reference gradients diverged: {diff}");
            }
        }
    }

    #[test]
    fn single_instance_batch_bit_matches_the_reference_path() {
        let (params, config) = setup(HamVariant::HamM, (8, 4, 2, 2));
        let batch = vec![example_batch().remove(1)];
        let (fast, fast_loss) = batch_gradients(&params, &batch, &config);
        let (reference, ref_loss) = batch_gradients_reference(&params, &batch, &config);
        assert_eq!(fast_loss.to_bits(), ref_loss.to_bits());
        for id in [params.u, params.v, params.w] {
            let a = fast.to_dense(id, params.store.value(id));
            let b = reference.to_dense(id, params.store.value(id));
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "batch-of-1 gradients must be bit-identical");
            }
        }
    }

    #[test]
    fn block_gradients_merge_to_the_sequential_result() {
        let (params, config) = setup(HamVariant::HamM, (8, 4, 2, 2));
        let batch = huge_batch();
        assert!(batch.len() > MANUAL_BLOCK, "batch must span multiple gradient chunks");
        let batch_scale = 1.0 / batch.len() as f32;
        let (sequential, seq_loss) = batch_gradients(&params, &batch, &config);
        let mut merged = GradStore::new();
        let mut loss = 0.0f64;
        for block in batch.chunks(MANUAL_BLOCK) {
            let (g, l) = block_gradients(&params, block, &config, batch_scale);
            merged.merge(g);
            loss += l;
        }
        assert_eq!((loss as f32).to_bits(), seq_loss.to_bits());
        for id in [params.u, params.v, params.w] {
            let a = sequential.to_dense(id, params.store.value(id));
            let b = merged.to_dense(id, params.store.value(id));
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "block merge must be bit-identical to sequential blocks");
            }
        }
    }

    #[test]
    fn ablated_user_term_receives_no_gradient() {
        let (params, config) = setup(HamVariant::HamSMNoUser, (8, 4, 2, 2));
        // strip synergies so the manual path applies
        let config = HamConfig { synergy_order: 1, ..config };
        let batch = example_batch();
        let (grads, _) = batch_gradients(&params, &batch, &config);
        assert!(!grads.contains(params.u), "user embedding must not receive gradients when ablated");
        assert!(grads.contains(params.v) && grads.contains(params.w));
    }

    #[test]
    fn loss_is_positive_and_finite() {
        let (params, config) = setup(HamVariant::HamM, (8, 4, 2, 2));
        let (_, loss) = batch_gradients(&params, &example_batch(), &config);
        assert!(loss.is_finite() && loss > 0.0);
    }

    #[test]
    #[should_panic(expected = "synergy_order == 1")]
    fn synergy_config_is_rejected() {
        let config = HamConfig::for_variant(HamVariant::HamSM).with_dimensions(8, 4, 2, 2, 2);
        let model = HamModel::new(2, 10, config, 1);
        let params = HamParams::from_model(&model);
        let _ = batch_gradients(&params, &example_batch(), &config);
    }
}
