//! Mini-batched BPR training of HAM models (Section 4.4 of the paper).
//!
//! The training pipeline is batched end to end: a
//! [`ham_data::batch::BatchSampler`] shuffles the sliding windows and packs
//! them — negatives included — into fixed-size mini-batches from one seeded
//! RNG stream (the instance stream is independent of the batch size), each
//! batch is split into fixed gradient blocks ([`MANUAL_BLOCK`] /
//! [`TRAIN_BLOCK`] instances) whose
//! gradients route through the `Q·Wᵀ` GEMM and rank-1 `axpy_rows` kernels,
//! and one sparse-row Adam step applies the merged, duplicate-row-coalesced
//! gradients per batch. With `TrainConfig::num_threads > 1` the blocks of a
//! batch are computed in parallel on the shared work-stealing pool and merged
//! in block order, so the result is bit-identical to the single-threaded run.
//!
//! Two gradient paths produce identical gradients (verified by tests in
//! [`manual`]):
//!
//! * [`manual`] — analytic gradients of the BPR objective, the fast path used
//!   for the pooling-only variants (`synergy_order == 1`);
//! * [`autograd_ref`] — the same objective expressed on the
//!   [`ham_autograd::Graph`] tape (one batched tape per block); required for
//!   the synergy variants and used as the reference implementation in tests.
//!
//! [`resume::TrainerState`] wraps the same pipeline in a resumable handle —
//! parameters and Adam moments kept alive across training rounds, tables
//! grown row-wise — for the online trainer (`ham-online`).
//!
//! A batch of **one** instance takes the exact legacy per-instance path in
//! both, so `batch_size = 1` reproduces instance-at-a-time training bit for
//! bit — pinned, together with GEMM-vs-reference agreement at every batch
//! size, by the batch-size-invariance proptests below.

pub mod autograd_ref;
pub mod manual;
pub mod resume;

pub use resume::TrainerState;

use crate::config::{HamConfig, TrainConfig};
use crate::model::HamModel;
use ham_autograd::{Adam, AdamConfig, GradStore, Optimizer, ParamId, ParamStore};
use ham_data::batch::BatchSampler;
pub(crate) use ham_data::batch::PreparedInstance;
use ham_data::dataset::ItemId;
use ham_telemetry::{Counter, Histogram};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Instances per autograd gradient block: the span of one batched tape and
/// the unit of work the threaded trainer schedules for the synergy variants.
/// Fixed (rather than derived from the batch or thread count) so results
/// never depend on either.
pub(crate) const TRAIN_BLOCK: usize = 32;

/// Instances per manual-path GEMM block. The score GEMM is `block × unique
/// candidates`, and the unique-candidate count grows with the block, so the
/// wasted rectangle grows quadratically — a smaller block keeps the
/// `Q·Cᵀ` product tight while gradient coalescing still happens batch-wide
/// in the merged `GradStore`. Fixed for the same determinism reason as
/// [`TRAIN_BLOCK`].
pub(crate) const MANUAL_BLOCK: usize = 256;

/// The block length a batch is partitioned into for the given gradient path.
pub(crate) fn block_len(use_autograd: bool) -> usize {
    if use_autograd {
        TRAIN_BLOCK
    } else {
        MANUAL_BLOCK
    }
}

/// Per-epoch training metrics, resolved from the process-global
/// [`ham_telemetry`] handle ([`ham_telemetry::global`]). `None` when no
/// enabled handle is installed — recording then costs nothing. Resolved per
/// training call rather than cached so a handle installed between runs is
/// picked up.
pub(crate) struct TrainMetrics {
    pairs_total: Counter,
    epochs_total: Counter,
    epoch_pairs_per_sec: Histogram,
}

impl TrainMetrics {
    pub(crate) fn resolve() -> Option<Self> {
        let telemetry = ham_telemetry::global();
        let registry = telemetry.registry()?;
        Some(Self {
            pairs_total: registry.counter("train_pairs_total"),
            epochs_total: registry.counter("train_epochs_total"),
            epoch_pairs_per_sec: registry.histogram("train_epoch_pairs_per_sec"),
        })
    }

    /// Records one finished epoch: its BPR pair count and throughput.
    pub(crate) fn record_epoch(&self, pairs: usize, pairs_per_sec: f64) {
        self.epochs_total.inc();
        self.pairs_total.add(pairs as u64);
        self.epoch_pairs_per_sec.record(pairs_per_sec as u64);
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index (starting at 1).
    pub epoch: usize,
    /// Mean BPR loss over all training pairs in the epoch.
    pub mean_loss: f32,
    /// Number of sliding-window instances processed.
    pub num_instances: usize,
    /// The mini-batch size the epoch trained with.
    pub batch_size: usize,
    /// Training throughput: (positive, negative) BPR pairs per second over
    /// the epoch's wall time.
    pub pairs_per_sec: f64,
}

/// The model parameters registered in a [`ParamStore`] for training.
pub(crate) struct HamParams {
    pub(crate) store: ParamStore,
    pub(crate) u: ParamId,
    pub(crate) v: ParamId,
    pub(crate) w: ParamId,
}

impl HamParams {
    fn from_model(model: &HamModel) -> Self {
        let mut store = ParamStore::new();
        let u = store.add_embedding("U", model.user_emb.clone());
        let v = store.add_embedding("V", model.item_emb_in.clone());
        let w = store.add_embedding("W", model.item_emb_out.clone());
        Self { store, u, v, w }
    }

    fn write_back(&self, model: &mut HamModel) {
        model.user_emb = self.store.value(self.u).clone();
        model.item_emb_in = self.store.value(self.v).clone();
        model.item_emb_out = self.store.value(self.w).clone();
    }
}

/// Whether every instance of the batch has the same window/target widths (the
/// precondition of the blocked GEMM and batched-tape paths; always true for
/// batches from [`BatchSampler`]).
pub(crate) fn uniform_shapes(batch: &[PreparedInstance]) -> bool {
    let Some(first) = batch.first() else { return false };
    batch.iter().all(|i| {
        i.input.len() == first.input.len()
            && i.low.len() == first.low.len()
            && i.targets.len() == first.targets.len()
            && i.negatives.len() == i.targets.len()
            && !i.targets.is_empty()
    })
}

/// Trains a HAM model on per-user training sequences and returns it.
///
/// `train_sequences[u]` is the chronological training sequence of user `u`
/// (e.g. [`ham_data::split::DataSplit::train`] or
/// [`ham_data::split::DataSplit::train_with_val`]).
pub fn train(
    train_sequences: &[Vec<ItemId>],
    num_items: usize,
    config: &HamConfig,
    train_config: &TrainConfig,
    seed: u64,
) -> HamModel {
    train_with_history(train_sequences, num_items, config, train_config, seed).0
}

/// Like [`train`], additionally returning per-epoch loss statistics.
pub fn train_with_history(
    train_sequences: &[Vec<ItemId>],
    num_items: usize,
    config: &HamConfig,
    train_config: &TrainConfig,
    seed: u64,
) -> (HamModel, Vec<EpochStats>) {
    train_impl(train_sequences, num_items, config, train_config, seed, false)
}

/// The training pipeline; `force_reference` swaps the blocked GEMM /
/// batched-tape gradients for the legacy per-instance paths (the batch-size-
/// invariance tests train both ways and compare the resulting models).
pub(crate) fn train_impl(
    train_sequences: &[Vec<ItemId>],
    num_items: usize,
    config: &HamConfig,
    train_config: &TrainConfig,
    seed: u64,
    force_reference: bool,
) -> (HamModel, Vec<EpochStats>) {
    config.validate();
    assert!(!train_sequences.is_empty(), "train: need at least one user sequence");
    let num_users = train_sequences.len();
    let mut model = HamModel::new(num_users, num_items, *config, seed);
    let mut params = HamParams::from_model(&model);

    let batch_size = train_config.batch_size.max(1);
    // Mix a fixed marker into the seed so training noise (shuffling, negative
    // sampling) is decoupled from the model-initialisation noise.
    let mut sampler = BatchSampler::new(
        train_sequences,
        num_items,
        config.n_h,
        config.n_p,
        config.n_l,
        batch_size,
        seed ^ 0x7A21_55ED,
    );

    let use_autograd = config.uses_synergies() || train_config.force_autograd;
    let mut adam = Adam::new(AdamConfig {
        learning_rate: train_config.learning_rate,
        weight_decay: train_config.weight_decay,
        ..AdamConfig::default()
    });
    let mut history = Vec::with_capacity(train_config.epochs);
    let metrics = TrainMetrics::resolve();

    for epoch in 1..=train_config.epochs {
        let started = Instant::now();
        sampler.start_epoch();
        let mut epoch_loss = 0.0f64;
        let mut instances = 0usize;
        let mut pairs = 0usize;
        while let Some(batch) = sampler.next_batch() {
            let (grads, loss) =
                compute_batch_gradients(&params, batch, config, train_config, use_autograd, force_reference);
            adam.step(&mut params.store, &grads);
            epoch_loss += loss as f64 * batch.len() as f64;
            instances += batch.len();
            pairs += batch.iter().map(|i| i.targets.len()).sum::<usize>();
        }
        let seconds = started.elapsed().as_secs_f64();
        let pairs_per_sec = if seconds > 0.0 { pairs as f64 / seconds } else { 0.0 };
        if let Some(metrics) = &metrics {
            metrics.record_epoch(pairs, pairs_per_sec);
        }
        history.push(EpochStats {
            epoch,
            mean_loss: if instances > 0 { (epoch_loss / instances as f64) as f32 } else { 0.0 },
            num_instances: instances,
            batch_size,
            pairs_per_sec,
        });
    }

    params.write_back(&mut model);
    (model, history)
}

/// Gradients and mean loss of one batch, optionally chunking the gradient
/// blocks onto the shared worker pool. Blocks are always [`block_len`]
/// instances and always merge in block order, so the thread count never
/// changes the result; at most `num_threads` tasks run concurrently (blocks
/// are grouped into `num_threads` contiguous spans, one pool task each).
fn compute_batch_gradients(
    params: &HamParams,
    batch: &[PreparedInstance],
    config: &HamConfig,
    train_config: &TrainConfig,
    use_autograd: bool,
    force_reference: bool,
) -> (GradStore, f32) {
    if force_reference {
        return if use_autograd {
            autograd_ref::batch_gradients_reference(params, batch, config)
        } else {
            manual::batch_gradients_reference(params, batch, config)
        };
    }
    let threads = train_config.num_threads.max(1);
    let block = block_len(use_autograd);
    if threads > 1 && batch.len() > block && uniform_shapes(batch) {
        let batch_scale = 1.0f32 / batch.len() as f32;
        let blocks: Vec<&[PreparedInstance]> = batch.chunks(block).collect();
        let mut results: Vec<Option<(GradStore, f64)>> = blocks.iter().map(|_| None).collect();
        // One pool task per contiguous group of blocks bounds concurrency at
        // `num_threads`; the grouping cannot affect results because every
        // block is computed independently and merged by batch position.
        let group = blocks.len().div_ceil(threads);
        ham_tensor::pool::global_pool().scope(|scope| {
            for (slots, group_blocks) in results.chunks_mut(group).zip(blocks.chunks(group)) {
                scope.spawn(move || {
                    for (slot, &block) in slots.iter_mut().zip(group_blocks) {
                        *slot = Some(if use_autograd {
                            autograd_ref::block_gradients(params, block, config, batch_scale)
                        } else {
                            manual::block_gradients(params, block, config, batch_scale)
                        });
                    }
                });
            }
        });
        let mut grads = GradStore::new();
        let mut loss = 0.0f64;
        for result in results {
            let (block_grads, block_loss) = result.expect("every block task writes its slot");
            grads.merge(block_grads);
            loss += block_loss;
        }
        (grads, loss as f32)
    } else if use_autograd {
        autograd_ref::batch_gradients(params, batch, config)
    } else {
        manual::batch_gradients(params, batch, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HamVariant;
    use ham_data::synthetic::DatasetProfile;
    use proptest::prelude::*;

    fn tiny_training_setup() -> (Vec<Vec<ItemId>>, usize) {
        let data = DatasetProfile::tiny("train-test").generate(5);
        (data.sequences.clone(), data.num_items)
    }

    fn all_variants() -> [HamVariant; 6] {
        [
            HamVariant::HamX,
            HamVariant::HamM,
            HamVariant::HamSX,
            HamVariant::HamSM,
            HamVariant::HamSMNoLowOrder,
            HamVariant::HamSMNoUser,
        ]
    }

    fn variant_config(variant: HamVariant) -> HamConfig {
        let base = HamConfig::for_variant(variant);
        let order = base.synergy_order.min(2);
        let mut config = base.with_dimensions(8, 4, base.n_l.min(2), 2, order);
        if matches!(variant, HamVariant::HamSMNoLowOrder) {
            config.n_l = 0;
        }
        config
    }

    fn max_model_diff(a: &HamModel, b: &HamModel) -> f32 {
        let mut diff = 0.0f32;
        for (x, y) in [(&a.user_emb, &b.user_emb), (&a.item_emb_in, &b.item_emb_in), (&a.item_emb_out, &b.item_emb_out)]
        {
            for (p, q) in x.as_slice().iter().zip(y.as_slice()) {
                diff = diff.max((p - q).abs());
            }
        }
        diff
    }

    fn models_bit_identical(a: &HamModel, b: &HamModel) -> bool {
        [(&a.user_emb, &b.user_emb), (&a.item_emb_in, &b.item_emb_in), (&a.item_emb_out, &b.item_emb_out)]
            .iter()
            .all(|(x, y)| x.as_slice().iter().zip(y.as_slice()).all(|(p, q)| p.to_bits() == q.to_bits()))
    }

    #[test]
    fn training_reduces_bpr_loss() {
        let (seqs, num_items) = tiny_training_setup();
        let config = HamConfig::for_variant(HamVariant::HamM).with_dimensions(16, 4, 2, 2, 1);
        let tc = TrainConfig { epochs: 5, batch_size: 128, ..TrainConfig::default() };
        let (_, history) = train_with_history(&seqs, num_items, &config, &tc, 11);
        assert_eq!(history.len(), 5);
        let first = history.first().unwrap().mean_loss;
        let last = history.last().unwrap().mean_loss;
        assert!(last < first, "loss should decrease: first {first}, last {last}");
    }

    #[test]
    fn epoch_stats_report_throughput_and_batch_size() {
        let (seqs, num_items) = tiny_training_setup();
        let config = HamConfig::for_variant(HamVariant::HamM).with_dimensions(8, 4, 2, 2, 1);
        let tc = TrainConfig { epochs: 1, batch_size: 32, ..TrainConfig::default() };
        let (_, history) = train_with_history(&seqs, num_items, &config, &tc, 7);
        let stats = history[0];
        assert_eq!(stats.batch_size, 32);
        assert!(stats.num_instances > 0);
        assert!(stats.pairs_per_sec > 0.0, "throughput must be positive: {stats:?}");
    }

    #[test]
    fn epoch_stats_serde_round_trip() {
        let stats =
            EpochStats { epoch: 3, mean_loss: 0.451, num_instances: 1234, batch_size: 64, pairs_per_sec: 98765.4321 };
        let json = serde_json::to_string(&stats).expect("serialize EpochStats");
        for field in ["epoch", "mean_loss", "num_instances", "batch_size", "pairs_per_sec"] {
            assert!(json.contains(field), "serialized stats must contain {field}: {json}");
        }
        let back: EpochStats = serde_json::from_str(&json).expect("deserialize EpochStats");
        assert_eq!(stats, back);
    }

    #[test]
    fn synergy_variant_trains_via_autograd_and_stays_finite() {
        let (seqs, num_items) = tiny_training_setup();
        let config = HamConfig::for_variant(HamVariant::HamSM).with_dimensions(8, 4, 1, 2, 2);
        let tc = TrainConfig { epochs: 2, batch_size: 64, ..TrainConfig::default() };
        let model = train(&seqs, num_items, &config, &tc, 3);
        assert!(model.is_finite());
        let scores = model.score_all(0, &seqs[0]);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn manual_and_autograd_training_are_both_supported() {
        let (seqs, num_items) = tiny_training_setup();
        let config = HamConfig::for_variant(HamVariant::HamM).with_dimensions(8, 3, 1, 2, 1);
        let tc_manual = TrainConfig { epochs: 1, ..TrainConfig::default() };
        let tc_auto = TrainConfig { epochs: 1, force_autograd: true, ..TrainConfig::default() };
        let m1 = train(&seqs, num_items, &config, &tc_manual, 9);
        let m2 = train(&seqs, num_items, &config, &tc_auto, 9);
        // Both paths start from the same initialisation and shuffle with the
        // same seed, so the resulting models must agree closely.
        let diff: f32 = m1
            .candidate_item_embeddings()
            .as_slice()
            .iter()
            .zip(m2.candidate_item_embeddings().as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max);
        assert!(diff < 1e-3, "manual and autograd training diverged: max diff {diff}");
    }

    #[test]
    fn batch_size_one_training_bit_matches_the_reference_pipeline() {
        let (seqs, num_items) = tiny_training_setup();
        for variant in [HamVariant::HamM, HamVariant::HamSM] {
            let config = variant_config(variant);
            let tc = TrainConfig { epochs: 1, batch_size: 1, ..TrainConfig::default() };
            let (fast, _) = train_impl(&seqs, num_items, &config, &tc, 13, false);
            let (reference, _) = train_impl(&seqs, num_items, &config, &tc, 13, true);
            assert!(
                models_bit_identical(&fast, &reference),
                "{variant:?}: batch_size=1 must reproduce the per-instance path bit for bit"
            );
        }
    }

    #[test]
    fn thread_count_does_not_change_the_trained_model() {
        let (seqs, num_items) = tiny_training_setup();
        for variant in [HamVariant::HamM, HamVariant::HamSM] {
            let config = variant_config(variant);
            // The batch must span several gradient blocks on *both* paths
            // (manual blocks are MANUAL_BLOCK instances, autograd blocks
            // TRAIN_BLOCK) or the threaded branch silently runs inline.
            let batch_size = MANUAL_BLOCK + 44;
            let windows = BatchSampler::new(&seqs, num_items, config.n_h, config.n_p, config.n_l, 1, 0).num_instances();
            assert!(windows > batch_size, "dataset too small to exercise the threaded path");
            let single = TrainConfig { epochs: 1, batch_size, ..TrainConfig::default() };
            let threaded = TrainConfig { num_threads: 3, ..single };
            let (a, _) = train_with_history(&seqs, num_items, &config, &single, 5);
            let (b, _) = train_with_history(&seqs, num_items, &config, &threaded, 5);
            assert!(models_bit_identical(&a, &b), "{variant:?}: threading must be bit-deterministic");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Batch-size invariance: for any batch size, one epoch through the
        /// batched GEMM / batched-tape pipeline lands within 1e-5 of one
        /// epoch through the legacy per-instance reference paths, for every
        /// HAM variant (identical instance stream by the sampler's
        /// determinism contract; batch_size = 1 is additionally bit-exact —
        /// see `batch_size_one_training_bit_matches_the_reference_pipeline`).
        #[test]
        fn any_batch_size_matches_the_reference_pipeline(batch_size in 1usize..80, variant_idx in 0usize..6, seed in 0u64..32) {
            let (seqs, num_items) = tiny_training_setup();
            let variant = all_variants()[variant_idx];
            let config = variant_config(variant);
            let tc = TrainConfig { epochs: 1, batch_size, ..TrainConfig::default() };
            let (fast, _) = train_impl(&seqs, num_items, &config, &tc, seed, false);
            let (reference, _) = train_impl(&seqs, num_items, &config, &tc, seed, true);
            let diff = max_model_diff(&fast, &reference);
            prop_assert!(diff <= 1e-5, "{variant:?} batch_size={batch_size} seed={seed}: diff {diff}");
            if batch_size == 1 {
                prop_assert!(models_bit_identical(&fast, &reference), "{variant:?}: batch_size=1 must be bit-exact");
            }
        }
    }

    #[test]
    fn trained_model_beats_untrained_on_next_item_ranking() {
        let (seqs, num_items) = tiny_training_setup();
        let config = HamConfig::for_variant(HamVariant::HamM).with_dimensions(16, 4, 2, 2, 1);
        let tc = TrainConfig { epochs: 12, batch_size: 32, ..TrainConfig::default() };
        let trained = train(&seqs, num_items, &config, &tc, 21);
        let untrained = HamModel::new(seqs.len(), num_items, config, 999);

        // Evaluate: the true next item should rank better (lower mean rank)
        // after training than under random embeddings.
        let mean_rank = |m: &HamModel| {
            let mut total_rank = 0usize;
            let mut count = 0usize;
            for (u, seq) in seqs.iter().enumerate().take(40) {
                if seq.len() < 6 {
                    continue;
                }
                let (hist, next) = seq.split_at(seq.len() - 1);
                let scores = m.score_all(u, hist);
                let target = scores[next[0]];
                total_rank += scores.iter().filter(|&&s| s > target).count();
                count += 1;
            }
            total_rank as f64 / count as f64
        };
        let trained_rank = mean_rank(&trained);
        let untrained_rank = mean_rank(&untrained);
        assert!(
            trained_rank < untrained_rank,
            "training should improve the mean rank of the next item \
             (trained {trained_rank:.1} vs untrained {untrained_rank:.1})"
        );
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn empty_training_set_panics() {
        let config = HamConfig::default();
        let _ = train(&[], 10, &config, &TrainConfig::default(), 1);
    }
}
