//! BPR training of HAM models (Section 4.4 of the paper).
//!
//! Two training paths produce identical gradients (verified by tests in
//! [`manual`]):
//!
//! * [`manual`] — analytic gradients of the BPR objective, the fast path used
//!   for the pooling-only variants (`synergy_order == 1`);
//! * [`autograd_ref`] — the same objective expressed on the
//!   [`ham_autograd::Graph`] tape; required for the synergy variants and used
//!   as the reference implementation in tests.
//!
//! Both paths share the Adam optimizer (with sparse row updates for the
//! embedding matrices) and the sliding-window / negative-sampling pipeline
//! from `ham-data`.

pub mod autograd_ref;
pub mod manual;

use crate::config::{HamConfig, TrainConfig};
use crate::model::HamModel;
use ham_autograd::{Adam, AdamConfig, Optimizer, ParamId, ParamStore};
use ham_data::dataset::ItemId;
use ham_data::negative::NegativeSampler;
use ham_data::window::sliding_windows;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index (starting at 1).
    pub epoch: usize,
    /// Mean BPR loss over all training pairs in the epoch.
    pub mean_loss: f32,
    /// Number of sliding-window instances processed.
    pub num_instances: usize,
}

/// The model parameters registered in a [`ParamStore`] for training.
pub(crate) struct HamParams {
    pub(crate) store: ParamStore,
    pub(crate) u: ParamId,
    pub(crate) v: ParamId,
    pub(crate) w: ParamId,
}

impl HamParams {
    fn from_model(model: &HamModel) -> Self {
        let mut store = ParamStore::new();
        let u = store.add_embedding("U", model.user_emb.clone());
        let v = store.add_embedding("V", model.item_emb_in.clone());
        let w = store.add_embedding("W", model.item_emb_out.clone());
        Self { store, u, v, w }
    }

    fn write_back(&self, model: &mut HamModel) {
        model.user_emb = self.store.value(self.u).clone();
        model.item_emb_in = self.store.value(self.v).clone();
        model.item_emb_out = self.store.value(self.w).clone();
    }
}

/// One sliding-window instance with its low-order sub-window and sampled
/// negatives, ready for a gradient step.
#[derive(Debug, Clone)]
pub(crate) struct PreparedInstance {
    pub(crate) user: usize,
    /// The `n_h` input items.
    pub(crate) input: Vec<ItemId>,
    /// The last `n_l` input items (empty when the low-order term is ablated).
    pub(crate) low: Vec<ItemId>,
    /// The `n_p` positive target items.
    pub(crate) targets: Vec<ItemId>,
    /// One sampled negative per target.
    pub(crate) negatives: Vec<ItemId>,
}

/// Trains a HAM model on per-user training sequences and returns it.
///
/// `train_sequences[u]` is the chronological training sequence of user `u`
/// (e.g. [`ham_data::split::DataSplit::train`] or
/// [`ham_data::split::DataSplit::train_with_val`]).
pub fn train(
    train_sequences: &[Vec<ItemId>],
    num_items: usize,
    config: &HamConfig,
    train_config: &TrainConfig,
    seed: u64,
) -> HamModel {
    train_with_history(train_sequences, num_items, config, train_config, seed).0
}

/// Like [`train`], additionally returning per-epoch loss statistics.
pub fn train_with_history(
    train_sequences: &[Vec<ItemId>],
    num_items: usize,
    config: &HamConfig,
    train_config: &TrainConfig,
    seed: u64,
) -> (HamModel, Vec<EpochStats>) {
    config.validate();
    assert!(!train_sequences.is_empty(), "train: need at least one user sequence");
    let num_users = train_sequences.len();
    let mut model = HamModel::new(num_users, num_items, *config, seed);
    let mut params = HamParams::from_model(&model);

    let windows = sliding_windows(train_sequences, config.n_h, config.n_p);
    let samplers: Vec<Option<NegativeSampler>> = train_sequences
        .iter()
        .map(|seq| {
            let distinct: std::collections::HashSet<ItemId> = seq.iter().copied().collect();
            if distinct.len() < num_items {
                Some(NegativeSampler::new(num_items, distinct))
            } else {
                None
            }
        })
        .collect();

    let use_autograd = config.uses_synergies() || train_config.force_autograd;
    let mut adam = Adam::new(AdamConfig {
        learning_rate: train_config.learning_rate,
        weight_decay: train_config.weight_decay,
        ..AdamConfig::default()
    });
    // Mix a fixed marker into the seed so training noise (shuffling, negative
    // sampling) is decoupled from the model-initialisation noise.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7A21_55ED);
    let mut history = Vec::with_capacity(train_config.epochs);

    let mut order: Vec<usize> = (0..windows.len()).collect();
    for epoch in 1..=train_config.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        let mut pairs = 0usize;
        for chunk in order.chunks(train_config.batch_size.max(1)) {
            let batch: Vec<PreparedInstance> = chunk
                .iter()
                .filter_map(|&idx| {
                    let w = &windows[idx];
                    let sampler = samplers[w.user].as_ref()?;
                    let negatives = sampler.sample_many(w.targets.len(), &mut rng);
                    let low = if config.n_l > 0 {
                        w.input[w.input.len().saturating_sub(config.n_l)..].to_vec()
                    } else {
                        Vec::new()
                    };
                    Some(PreparedInstance {
                        user: w.user,
                        input: w.input.clone(),
                        low,
                        targets: w.targets.clone(),
                        negatives,
                    })
                })
                .collect();
            if batch.is_empty() {
                continue;
            }
            let (grads, loss) = if use_autograd {
                autograd_ref::batch_gradients(&params, &batch, config)
            } else {
                manual::batch_gradients(&params, &batch, config)
            };
            adam.step(&mut params.store, &grads);
            epoch_loss += loss as f64 * batch.len() as f64;
            pairs += batch.len();
        }
        history.push(EpochStats {
            epoch,
            mean_loss: if pairs > 0 { (epoch_loss / pairs as f64) as f32 } else { 0.0 },
            num_instances: pairs,
        });
    }

    params.write_back(&mut model);
    (model, history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HamVariant;
    use ham_data::synthetic::DatasetProfile;

    fn tiny_training_setup() -> (Vec<Vec<ItemId>>, usize) {
        let data = DatasetProfile::tiny("train-test").generate(5);
        (data.sequences.clone(), data.num_items)
    }

    #[test]
    fn training_reduces_bpr_loss() {
        let (seqs, num_items) = tiny_training_setup();
        let config = HamConfig::for_variant(HamVariant::HamM).with_dimensions(16, 4, 2, 2, 1);
        let tc = TrainConfig { epochs: 5, batch_size: 128, ..TrainConfig::default() };
        let (_, history) = train_with_history(&seqs, num_items, &config, &tc, 11);
        assert_eq!(history.len(), 5);
        let first = history.first().unwrap().mean_loss;
        let last = history.last().unwrap().mean_loss;
        assert!(last < first, "loss should decrease: first {first}, last {last}");
    }

    #[test]
    fn synergy_variant_trains_via_autograd_and_stays_finite() {
        let (seqs, num_items) = tiny_training_setup();
        let config = HamConfig::for_variant(HamVariant::HamSM).with_dimensions(8, 4, 1, 2, 2);
        let tc = TrainConfig { epochs: 2, batch_size: 64, ..TrainConfig::default() };
        let model = train(&seqs, num_items, &config, &tc, 3);
        assert!(model.is_finite());
        let scores = model.score_all(0, &seqs[0]);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn manual_and_autograd_training_are_both_supported() {
        let (seqs, num_items) = tiny_training_setup();
        let config = HamConfig::for_variant(HamVariant::HamM).with_dimensions(8, 3, 1, 2, 1);
        let tc_manual = TrainConfig { epochs: 1, ..TrainConfig::default() };
        let tc_auto = TrainConfig { epochs: 1, force_autograd: true, ..TrainConfig::default() };
        let m1 = train(&seqs, num_items, &config, &tc_manual, 9);
        let m2 = train(&seqs, num_items, &config, &tc_auto, 9);
        // Both paths start from the same initialisation and shuffle with the
        // same seed, so the resulting models must agree closely.
        let diff: f32 = m1
            .candidate_item_embeddings()
            .as_slice()
            .iter()
            .zip(m2.candidate_item_embeddings().as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max);
        assert!(diff < 1e-3, "manual and autograd training diverged: max diff {diff}");
    }

    #[test]
    fn trained_model_beats_untrained_on_next_item_ranking() {
        let (seqs, num_items) = tiny_training_setup();
        let config = HamConfig::for_variant(HamVariant::HamM).with_dimensions(16, 4, 2, 2, 1);
        let tc = TrainConfig { epochs: 12, batch_size: 32, ..TrainConfig::default() };
        let trained = train(&seqs, num_items, &config, &tc, 21);
        let untrained = HamModel::new(seqs.len(), num_items, config, 999);

        // Evaluate: the true next item should rank better (lower mean rank)
        // after training than under random embeddings.
        let mean_rank = |m: &HamModel| {
            let mut total_rank = 0usize;
            let mut count = 0usize;
            for (u, seq) in seqs.iter().enumerate().take(40) {
                if seq.len() < 6 {
                    continue;
                }
                let (hist, next) = seq.split_at(seq.len() - 1);
                let scores = m.score_all(u, hist);
                let target = scores[next[0]];
                total_rank += scores.iter().filter(|&&s| s > target).count();
                count += 1;
            }
            total_rank as f64 / count as f64
        };
        let trained_rank = mean_rank(&trained);
        let untrained_rank = mean_rank(&untrained);
        assert!(
            trained_rank < untrained_rank,
            "training should improve the mean rank of the next item \
             (trained {trained_rank:.1} vs untrained {untrained_rank:.1})"
        );
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn empty_training_set_panics() {
        let config = HamConfig::default();
        let _ = train(&[], 10, &config, &TrainConfig::default(), 1);
    }
}
