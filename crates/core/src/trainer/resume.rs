//! A resumable handle over the mini-batched training pipeline.
//!
//! [`train`](super::train) builds its [`ParamStore`] and [`Adam`] state,
//! runs its epochs, writes the embeddings back into a [`HamModel`] and drops
//! everything else. An *online* trainer cannot afford that: the next
//! incremental round must continue from the previous round's optimizer
//! moments (warm start), and the embedding tables must be able to grow when
//! the interaction stream mentions unseen users or items.
//! [`TrainerState`] keeps exactly that state alive between rounds while
//! routing every batch through the same chunked gradient pipeline
//! ([`compute_batch_gradients`](super::compute_batch_gradients)) the offline
//! trainer uses — GEMM-blocked manual gradients or batched autograd tapes,
//! optionally fanned out on the shared worker pool.
//!
//! Two properties the online loop leans on, both pinned by tests:
//!
//! * **Resume transparency** — exporting ([`TrainerState::snapshot`] +
//!   [`TrainerState::adam_state`]) and rebuilding via
//!   [`TrainerState::from_model`] is bit-invisible: the resumed state trains
//!   on to exactly the parameters the uninterrupted state reaches.
//! * **Growth determinism** — a grown row's initial value depends only on
//!   the seed, the table and the row index, never on *when* the table grew,
//!   so replaying the same append/round schedule reproduces the same model.

use super::{compute_batch_gradients, EpochStats, HamParams};
use crate::config::{HamConfig, TrainConfig};
use crate::model::HamModel;
use ham_autograd::{Adam, AdamConfig, AdamState, Optimizer, ParamId};
use ham_data::batch::BatchSampler;
use ham_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Table tags mixed into the growth seed so U/V/W rows draw from distinct
/// streams (arbitrary odd constants).
const GROW_TAG_U: u64 = 0xA5A5_1F3D_9E4B_0001;
const GROW_TAG_V: u64 = 0xC3C3_7B21_55ED_0003;
const GROW_TAG_W: u64 = 0xE1E1_4D59_A7F1_0005;

/// Training state that survives across rounds: the parameter store, the Adam
/// moments (with per-row step counts) and the configuration. See the module
/// docs for the invariants.
pub struct TrainerState {
    params: HamParams,
    adam: Adam,
    config: HamConfig,
    train_config: TrainConfig,
    seed: u64,
    use_autograd: bool,
}

impl TrainerState {
    /// Fresh state with Xavier-initialised embeddings (identical to the
    /// initial model [`train`](super::train) would build from this seed) and
    /// **per-row Adam bias correction** enabled — the correct scheme when
    /// rows can be first touched at arbitrary global steps, which is the
    /// norm for an incremental stream.
    pub fn new(num_users: usize, num_items: usize, config: &HamConfig, train_config: &TrainConfig, seed: u64) -> Self {
        let adam = AdamConfig {
            learning_rate: train_config.learning_rate,
            weight_decay: train_config.weight_decay,
            per_row_bias_correction: true,
            ..AdamConfig::default()
        };
        Self::with_adam(num_users, num_items, config, train_config, adam, seed)
    }

    /// [`Self::new`] with an explicit optimizer configuration (tests compare
    /// the global and per-row correction schemes through this).
    pub fn with_adam(
        num_users: usize,
        num_items: usize,
        config: &HamConfig,
        train_config: &TrainConfig,
        adam: AdamConfig,
        seed: u64,
    ) -> Self {
        let model = HamModel::new(num_users, num_items, *config, seed);
        Self::from_model_impl(&model, train_config, Adam::new(adam), seed)
    }

    /// Warm-starts from an existing model and an exported optimizer state —
    /// the checkpoint/restore path. Training the restored state is
    /// bit-identical to training the state that exported it.
    ///
    /// `seed` must be the seed the original state was built with for grown
    /// rows to replay identically.
    pub fn from_model(
        model: &HamModel,
        train_config: &TrainConfig,
        adam: AdamConfig,
        state: AdamState,
        seed: u64,
    ) -> Self {
        Self::from_model_impl(model, train_config, Adam::resume(adam, state), seed)
    }

    fn from_model_impl(model: &HamModel, train_config: &TrainConfig, adam: Adam, seed: u64) -> Self {
        model.config().validate();
        Self {
            params: HamParams::from_model(model),
            adam,
            config: *model.config(),
            train_config: *train_config,
            seed,
            use_autograd: model.config().uses_synergies() || train_config.force_autograd,
        }
    }

    /// Number of user rows currently held.
    pub fn num_users(&self) -> usize {
        self.params.store.value(self.params.u).rows()
    }

    /// Number of item rows currently held.
    pub fn num_items(&self) -> usize {
        self.params.store.value(self.params.v).rows()
    }

    /// The model hyper-parameters.
    pub fn config(&self) -> &HamConfig {
        &self.config
    }

    /// The training hyper-parameters.
    pub fn train_config(&self) -> &TrainConfig {
        &self.train_config
    }

    /// Global Adam steps taken so far (one per trained batch).
    pub fn optimizer_steps(&self) -> u64 {
        self.adam.steps()
    }

    /// Exports the optimizer state for [`Self::from_model`].
    pub fn adam_state(&self) -> AdamState {
        self.adam.export_state()
    }

    /// The optimizer configuration in use.
    pub fn adam_config(&self) -> AdamConfig {
        *self.adam.config()
    }

    /// Grows the embedding tables (and, lazily, the optimizer moments) to
    /// cover `num_users` users and `num_items` items. New rows are
    /// Xavier-initialised from a stream keyed on `(seed, table, row index)`
    /// only — growing `10 → 15` rows in one round or over five rounds yields
    /// bit-identical tables. Shrinking is not supported (extra rows are
    /// simply never requested again).
    pub fn grow_to(&mut self, num_users: usize, num_items: usize) {
        let d = self.config.d;
        let seed = self.seed;
        let mut grow = |id: ParamId, tag: u64, rows: usize| {
            let current = self.params.store.value(id).rows();
            for row in current..rows {
                self.params.store.append_rows(id, &grown_row(seed, tag, row, d));
            }
        };
        grow(self.params.u, GROW_TAG_U, num_users);
        grow(self.params.v, GROW_TAG_V, num_items);
        grow(self.params.w, GROW_TAG_W, num_items);
    }

    /// Runs `epochs` passes of `sampler`'s batches through the chunked
    /// gradient pipeline, one coalesced sparse Adam step per batch —
    /// exactly the per-epoch loop of [`train`](super::train), continuing
    /// from this state's parameters and moments.
    ///
    /// The sampler's instances must only reference user/item rows the state
    /// already covers (call [`Self::grow_to`] first after appends).
    pub fn train_round(&mut self, sampler: &mut BatchSampler, epochs: usize) -> Vec<EpochStats> {
        let mut history = Vec::with_capacity(epochs);
        let metrics = super::TrainMetrics::resolve();
        for epoch in 1..=epochs {
            let started = Instant::now();
            sampler.start_epoch();
            let mut epoch_loss = 0.0f64;
            let mut instances = 0usize;
            let mut pairs = 0usize;
            while let Some(batch) = sampler.next_batch() {
                let (grads, loss) = compute_batch_gradients(
                    &self.params,
                    batch,
                    &self.config,
                    &self.train_config,
                    self.use_autograd,
                    false,
                );
                self.adam.step(&mut self.params.store, &grads);
                epoch_loss += loss as f64 * batch.len() as f64;
                instances += batch.len();
                pairs += batch.iter().map(|i| i.targets.len()).sum::<usize>();
            }
            let seconds = started.elapsed().as_secs_f64();
            let pairs_per_sec = if seconds > 0.0 { pairs as f64 / seconds } else { 0.0 };
            if let Some(metrics) = &metrics {
                metrics.record_epoch(pairs, pairs_per_sec);
            }
            history.push(EpochStats {
                epoch,
                mean_loss: if instances > 0 { (epoch_loss / instances as f64) as f32 } else { 0.0 },
                num_instances: instances,
                batch_size: sampler.batch_size(),
                pairs_per_sec,
            });
        }
        history
    }

    /// Freezes the current parameters into a [`HamModel`] snapshot (the
    /// state itself keeps training; the snapshot is what gets published).
    pub fn snapshot(&self) -> HamModel {
        HamModel::from_embeddings(
            self.config,
            self.params.store.value(self.params.u).clone(),
            self.params.store.value(self.params.v).clone(),
            self.params.store.value(self.params.w).clone(),
        )
    }
}

impl std::fmt::Debug for TrainerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainerState")
            .field("num_users", &self.num_users())
            .field("num_items", &self.num_items())
            .field("optimizer_steps", &self.optimizer_steps())
            .field("use_autograd", &self.use_autograd)
            .finish()
    }
}

/// The deterministic initial value of grown row `row` of a table: depends on
/// the seed, the table tag and the row index only. Fixed fan `(1 + d)`, so
/// the scale is that of a one-row Xavier draw regardless of table size.
fn grown_row(seed: u64, tag: u64, row: usize, d: usize) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed ^ tag ^ (row as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    Matrix::xavier_uniform(1, d, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HamVariant;
    use crate::trainer::train_with_history;
    use ham_data::synthetic::DatasetProfile;

    fn setup() -> (Vec<Vec<usize>>, usize) {
        let data = DatasetProfile::tiny("resume-test").generate(5);
        (data.sequences.clone(), data.num_items)
    }

    fn bit_identical(a: &HamModel, b: &HamModel) -> bool {
        [
            (a.user_embeddings(), b.user_embeddings()),
            (a.input_item_embeddings(), b.input_item_embeddings()),
            (a.candidate_item_embeddings(), b.candidate_item_embeddings()),
        ]
        .iter()
        .all(|(x, y)| x.as_slice().iter().zip(y.as_slice()).all(|(p, q)| p.to_bits() == q.to_bits()))
    }

    /// With the optimizer pinned to the offline scheme, one round through
    /// `TrainerState` IS the offline pipeline: bit-identical to `train`.
    #[test]
    fn pinned_state_reproduces_the_offline_trainer_bit_for_bit() {
        let (seqs, num_items) = setup();
        for (variant, order) in [(HamVariant::HamM, 1), (HamVariant::HamSM, 2)] {
            let config = HamConfig::for_variant(variant).with_dimensions(8, 4, 2, 2, order);
            let tc = TrainConfig { epochs: 2, batch_size: 32, ..TrainConfig::default() };
            let (offline, _) = train_with_history(&seqs, num_items, &config, &tc, 13);

            let adam =
                AdamConfig { learning_rate: tc.learning_rate, weight_decay: tc.weight_decay, ..AdamConfig::default() };
            let mut state = TrainerState::with_adam(seqs.len(), num_items, &config, &tc, adam, 13);
            // the same sampler-seed mixing `train_impl` applies
            let mut sampler = BatchSampler::new(
                &seqs,
                num_items,
                config.n_h,
                config.n_p,
                config.n_l,
                tc.batch_size,
                13 ^ 0x7A21_55ED,
            );
            state.train_round(&mut sampler, tc.epochs);
            assert!(
                bit_identical(&offline, &state.snapshot()),
                "{variant:?}: TrainerState must reuse the offline pipeline exactly"
            );
        }
    }

    /// Checkpoint/restore is invisible: exporting after round 1 and resuming
    /// via `from_model` reaches the same parameters as never pausing.
    #[test]
    fn resumed_state_matches_uninterrupted_training_bit_for_bit() {
        let (seqs, num_items) = setup();
        let config = HamConfig::for_variant(HamVariant::HamM).with_dimensions(8, 4, 2, 2, 1);
        let tc = TrainConfig { epochs: 1, batch_size: 16, ..TrainConfig::default() };

        let run_round = |state: &mut TrainerState, round: u64| {
            let mut sampler =
                BatchSampler::new(&seqs, num_items, config.n_h, config.n_p, config.n_l, tc.batch_size, 90 + round);
            state.train_round(&mut sampler, 1);
        };

        let mut continuous = TrainerState::new(seqs.len(), num_items, &config, &tc, 21);
        run_round(&mut continuous, 0);
        let checkpoint_model = continuous.snapshot();
        let checkpoint_adam = continuous.adam_state();
        run_round(&mut continuous, 1);

        let mut restored =
            TrainerState::from_model(&checkpoint_model, &tc, continuous.adam_config(), checkpoint_adam, 21);
        run_round(&mut restored, 1);

        assert_eq!(continuous.optimizer_steps(), restored.optimizer_steps());
        assert!(bit_identical(&continuous.snapshot(), &restored.snapshot()));
    }

    /// Growth determinism: the same final size is reached bit-identically
    /// whether the tables grow in one jump or in several rounds.
    #[test]
    fn grown_rows_depend_only_on_seed_table_and_row() {
        let config = HamConfig::for_variant(HamVariant::HamM).with_dimensions(8, 4, 2, 2, 1);
        let tc = TrainConfig::default();
        let mut one_jump = TrainerState::new(4, 10, &config, &tc, 77);
        one_jump.grow_to(9, 25);
        let mut stepwise = TrainerState::new(4, 10, &config, &tc, 77);
        stepwise.grow_to(5, 12);
        stepwise.grow_to(9, 20);
        stepwise.grow_to(9, 25);
        assert_eq!((stepwise.num_users(), stepwise.num_items()), (9, 25));
        assert!(bit_identical(&one_jump.snapshot(), &stepwise.snapshot()));
        // grown rows are real values, not zeros (cold rows must score)
        let grown = one_jump.snapshot();
        assert!(grown.candidate_item_embeddings().row(24).iter().any(|&x| x != 0.0));
        assert!(grown.is_finite());
    }

    /// Cold rows appended mid-stream train with correctly damped first
    /// updates and end up finite and usable.
    #[test]
    fn grown_tables_train_through_the_delta_sampler() {
        let (mut seqs, num_items) = setup();
        let config = HamConfig::for_variant(HamVariant::HamM).with_dimensions(8, 4, 2, 2, 1);
        let tc = TrainConfig { epochs: 1, batch_size: 8, ..TrainConfig::default() };
        let mut state = TrainerState::new(seqs.len(), num_items, &config, &tc, 3);
        let mut data = ham_data::append::AppendableDataset::from_sequences(seqs.clone(), num_items);
        let mut sampler = BatchSampler::over_delta(&data.delta_view(4, 2), num_items, 4, 2, 2, 8, 50);
        state.train_round(&mut sampler, 1);
        data.mark_trained();
        // a brand-new user interacts with brand-new items
        let new_user = seqs.len();
        for t in 0..6 {
            data.append(new_user, num_items + t % 3);
        }
        seqs.push((0..6).map(|t| num_items + t % 3).collect());
        state.grow_to(data.num_users(), data.num_items());
        let delta = data.delta_view(4, 2);
        let mut sampler = BatchSampler::over_delta(&delta, data.num_items(), 4, 2, 2, 8, 51);
        let stats = state.train_round(&mut sampler, 1);
        assert!(stats[0].num_instances > 0, "the new user's windows must be trained");
        let snapshot = state.snapshot();
        assert!(snapshot.is_finite());
        assert_eq!(snapshot.num_users(), seqs.len());
        assert_eq!(snapshot.num_items(), num_items + 3);
        // the new user's new-item scores are real numbers influenced by training
        let scores = snapshot.score_all(new_user, &seqs[new_user]);
        assert!(scores.iter().all(|s| s.is_finite()));
    }
}
