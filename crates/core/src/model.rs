//! The [`HamModel`]: embedding matrices, query-vector construction, scoring
//! and top-k recommendation.

use crate::config::HamConfig;
use crate::scorer::SeenMask;
use crate::synergy::{apply_latent_cross, synergy_terms};
use ham_data::dataset::ItemId;
use ham_data::window::recent_window;
use ham_tensor::matrix::dot;
use ham_tensor::ops::{top_k_indices, top_k_indices_masked};
use ham_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A (trained or untrained) Hybrid Associations Model.
///
/// The model owns three embedding matrices (the paper's `Θ = {U, V, W}`):
///
/// * `U ∈ R^{m×d}` — user general-preference embeddings,
/// * `V ∈ R^{n×d}` — *input* item embeddings (items used as history),
/// * `W ∈ R^{n×d}` — *candidate* item embeddings (items being scored),
///
/// following the heterogeneous item-embedding scheme of SASRec that the
/// paper adopts to model asymmetric item transitions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HamModel {
    config: HamConfig,
    num_users: usize,
    num_items: usize,
    pub(crate) user_emb: Matrix,
    pub(crate) item_emb_in: Matrix,
    pub(crate) item_emb_out: Matrix,
}

impl HamModel {
    /// Creates a model with Xavier-initialised embeddings.
    ///
    /// # Panics
    /// Panics if the configuration is invalid or `num_users` / `num_items`
    /// is zero.
    pub fn new(num_users: usize, num_items: usize, config: HamConfig, seed: u64) -> Self {
        config.validate();
        assert!(num_users > 0, "HamModel: num_users must be positive");
        assert!(num_items > 0, "HamModel: num_items must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            config,
            num_users,
            num_items,
            user_emb: Matrix::xavier_uniform(num_users, config.d, &mut rng),
            item_emb_in: Matrix::xavier_uniform(num_items, config.d, &mut rng),
            item_emb_out: Matrix::xavier_uniform(num_items, config.d, &mut rng),
        }
    }

    /// Assembles a model directly from its embedding matrices (the resumable
    /// trainer's snapshot path; user/item counts are implied by the shapes).
    ///
    /// # Panics
    /// Panics if the matrices are empty, their widths differ from `config.d`,
    /// or the two item tables disagree on the item count.
    pub(crate) fn from_embeddings(
        config: HamConfig,
        user_emb: Matrix,
        item_emb_in: Matrix,
        item_emb_out: Matrix,
    ) -> Self {
        config.validate();
        let (num_users, num_items) = (user_emb.rows(), item_emb_in.rows());
        assert!(num_users > 0, "HamModel: num_users must be positive");
        assert!(num_items > 0, "HamModel: num_items must be positive");
        assert_eq!(item_emb_out.rows(), num_items, "HamModel: item tables must have the same row count");
        for table in [&user_emb, &item_emb_in, &item_emb_out] {
            assert_eq!(table.cols(), config.d, "HamModel: embedding width must equal config.d");
        }
        Self { config, num_users, num_items, user_emb, item_emb_in, item_emb_out }
    }

    /// The model's hyper-parameters.
    pub fn config(&self) -> &HamConfig {
        &self.config
    }

    /// Number of users the model was built for.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of items the model can score.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Total number of trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.user_emb.len() + self.item_emb_in.len() + self.item_emb_out.len()
    }

    /// Read access to the user embedding matrix `U`.
    pub fn user_embeddings(&self) -> &Matrix {
        &self.user_emb
    }

    /// Read access to the input item embedding matrix `V`.
    pub fn input_item_embeddings(&self) -> &Matrix {
        &self.item_emb_in
    }

    /// Read access to the candidate item embedding matrix `W`.
    pub fn candidate_item_embeddings(&self) -> &Matrix {
        &self.item_emb_out
    }

    /// The high-order association embedding for an explicit input window
    /// (`h` in Eq. 1, or `s` in Eq. 6 when synergies are enabled).
    pub fn association_vector(&self, window: &[ItemId]) -> Vec<f32> {
        assert!(!window.is_empty(), "association_vector: window must not be empty");
        let rows = self.item_emb_in.gather_rows(window);
        let h = self.config.pooling.pool(&rows);
        if self.config.uses_synergies() {
            let synergies = synergy_terms(&rows, self.config.synergy_order);
            apply_latent_cross(&h, &synergies)
        } else {
            h
        }
    }

    /// The low-order association embedding `o` for an explicit window.
    pub fn low_order_vector(&self, window: &[ItemId]) -> Vec<f32> {
        if window.is_empty() {
            return vec![0.0; self.config.d];
        }
        let rows = self.item_emb_in.gather_rows(window);
        self.config.pooling.pool(&rows)
    }

    /// Builds the query vector `q` such that `r_ij = q · w_j`, i.e.
    /// `q = u_i + h/s + o` with the ablated terms omitted.
    ///
    /// `sequence` is the user's full history; the model extracts the most
    /// recent `n_h` / `n_l` items itself (short histories are front-padded by
    /// repeating the earliest item, mirroring the training-window padding).
    ///
    /// # Panics
    /// Panics if `sequence` is empty or `user >= num_users`.
    pub fn query_vector(&self, user: usize, sequence: &[ItemId]) -> Vec<f32> {
        assert!(user < self.num_users, "query_vector: user {user} out of range");
        assert!(!sequence.is_empty(), "query_vector: the user's sequence must not be empty");
        let high_window = recent_window(sequence, self.config.n_h);
        let mut q = self.association_vector(&high_window);
        if self.config.uses_low_order() {
            let low_window = recent_window(sequence, self.config.n_l);
            let o = self.low_order_vector(&low_window);
            for (qi, oi) in q.iter_mut().zip(&o) {
                *qi += oi;
            }
        }
        if self.config.use_user_term {
            for (qi, ui) in q.iter_mut().zip(self.user_emb.row(user)) {
                *qi += ui;
            }
        }
        q
    }

    /// Scores every item in the catalogue for the user (Eq. 7/8).
    ///
    /// Computed as one fused `W · q` pass over the candidate-embedding matrix
    /// ([`Matrix::matvec_transposed`]) instead of a per-item dot loop.
    pub fn score_all(&self, user: usize, sequence: &[ItemId]) -> Vec<f32> {
        let q = self.query_vector(user, sequence);
        self.item_emb_out.matvec_transposed(&q)
    }

    /// Scores every catalogue item for a batch of users in one blocked GEMM.
    ///
    /// Builds the query matrix `Q` (one [`Self::query_vector`] per row) once
    /// and computes `Q · Wᵀ`, returning a `users.len() × num_items` score
    /// matrix whose row `i` equals `score_all(users[i], histories[i])` up to
    /// float-rounding (≤ 1e-5). This is the test-time fast path behind
    /// `ham_eval::protocol::evaluate_batch`.
    ///
    /// # Panics
    /// Panics if `users` and `histories` differ in length, any user is out of
    /// range, or any history is empty.
    pub fn score_batch(&self, users: &[usize], histories: &[&[ItemId]]) -> Matrix {
        crate::scorer::batched_query_scores(users, histories, self.config.d, &self.item_emb_out, |u, h| {
            self.query_vector(u, h)
        })
    }

    /// Scores only the given candidate items.
    pub fn score_items(&self, user: usize, sequence: &[ItemId], candidates: &[ItemId]) -> Vec<f32> {
        let q = self.query_vector(user, sequence);
        candidates.iter().map(|&j| dot(&q, self.item_emb_out.row(j))).collect()
    }

    /// Recommends the `k` highest-scoring items, optionally excluding items
    /// the user has already interacted with.
    pub fn recommend_top_k(&self, user: usize, sequence: &[ItemId], k: usize, exclude_seen: bool) -> Vec<ItemId> {
        let mut mask = SeenMask::new(self.num_items);
        self.recommend_top_k_with(user, sequence, k, exclude_seen, &mut mask)
    }

    /// Like [`Self::recommend_top_k`], reusing a caller-owned [`SeenMask`] so
    /// a serving loop recommending for many users allocates the catalogue
    /// bitmap once instead of per call.
    ///
    /// The ranking runs through the fused mask+select kernel
    /// ([`top_k_indices_masked`]): seen items are skipped during the top-k
    /// scan via the bitmap instead of being overwritten with `-inf` in the
    /// score buffer, which keeps the buffer clean and the masking cost at
    /// O(history) marks plus O(history) clears.
    pub fn recommend_top_k_with(
        &self,
        user: usize,
        sequence: &[ItemId],
        k: usize,
        exclude_seen: bool,
        mask: &mut SeenMask,
    ) -> Vec<ItemId> {
        let scores = self.score_all(user, sequence);
        if exclude_seen {
            mask.mark(sequence);
            let top = top_k_indices_masked(&scores, k, mask.bits());
            mask.clear(sequence);
            top
        } else {
            top_k_indices(&scores, k)
        }
    }

    /// Returns true when every embedding value is finite; used as a training
    /// sanity check.
    pub fn is_finite(&self) -> bool {
        self.user_emb.all_finite() && self.item_emb_in.all_finite() && self.item_emb_out.all_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HamVariant;

    fn model(variant: HamVariant) -> HamModel {
        let config = HamConfig::for_variant(variant).with_dimensions(
            8,
            4,
            2,
            2,
            if HamConfig::for_variant(variant).uses_synergies() { 2 } else { 1 },
        );
        HamModel::new(5, 20, config, 3)
    }

    #[test]
    fn construction_and_sizes() {
        let m = model(HamVariant::HamSM);
        assert_eq!(m.num_users(), 5);
        assert_eq!(m.num_items(), 20);
        assert_eq!(m.num_parameters(), 5 * 8 + 20 * 8 + 20 * 8);
        assert_eq!(m.user_embeddings().shape(), (5, 8));
        assert!(m.is_finite());
    }

    #[test]
    fn scoring_decomposes_into_three_inner_products() {
        // r_ij computed by the model equals u·w + assoc·w + o·w computed by hand.
        let m = model(HamVariant::HamM);
        let seq: Vec<usize> = vec![1, 2, 3, 4, 5, 6];
        let user = 2;
        let item = 7;
        let scores = m.score_all(user, &seq);

        let high = recent_window(&seq, m.config().n_h);
        let low = recent_window(&seq, m.config().n_l);
        let h = m.association_vector(&high);
        let o = m.low_order_vector(&low);
        let w = m.candidate_item_embeddings().row(item);
        let expected = dot(m.user_embeddings().row(user), w) + dot(&h, w) + dot(&o, w);
        assert!((scores[item] - expected).abs() < 1e-5);
    }

    #[test]
    fn ablated_variants_drop_their_terms() {
        let full = model(HamVariant::HamSM);
        let no_user = model(HamVariant::HamSMNoUser);
        let seq = vec![0, 1, 2, 3];
        // different users give different scores only when the user term is on
        let s_full_u0 = full.score_all(0, &seq);
        let s_full_u1 = full.score_all(1, &seq);
        assert_ne!(s_full_u0, s_full_u1);
        let s_nou_u0 = no_user.score_all(0, &seq);
        let s_nou_u1 = no_user.score_all(1, &seq);
        assert_eq!(s_nou_u0, s_nou_u1);
    }

    #[test]
    fn synergy_variant_differs_from_plain_pooling() {
        let plain = model(HamVariant::HamM);
        let mut with_syn = plain.clone();
        with_syn.config.synergy_order = 2;
        let seq = vec![1, 2, 3, 4, 5];
        assert_ne!(plain.score_all(0, &seq), with_syn.score_all(0, &seq));
    }

    #[test]
    fn short_sequences_are_padded_not_rejected() {
        let m = model(HamVariant::HamSM);
        let scores = m.score_all(0, &[3]);
        assert_eq!(scores.len(), 20);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn score_items_agrees_with_score_all() {
        let m = model(HamVariant::HamSM);
        let seq = vec![1, 2, 3, 4, 5];
        let all = m.score_all(1, &seq);
        let subset = m.score_items(1, &seq, &[3, 9, 15]);
        assert!((subset[0] - all[3]).abs() < 1e-6);
        assert!((subset[2] - all[15]).abs() < 1e-6);
    }

    #[test]
    fn recommend_excludes_seen_items_when_asked() {
        let m = model(HamVariant::HamSM);
        let seq = vec![1, 2, 3, 4, 5];
        let rec = m.recommend_top_k(0, &seq, 20, true);
        for item in &seq {
            assert!(!rec[..15].contains(item), "seen item {item} recommended");
        }
        let rec_all = m.recommend_top_k(0, &seq, 5, false);
        assert_eq!(rec_all.len(), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unknown_user_panics() {
        let m = model(HamVariant::HamSM);
        let _ = m.score_all(99, &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_sequence_panics() {
        let m = model(HamVariant::HamSM);
        let _ = m.score_all(0, &[]);
    }
}
