//! # ham-core
//!
//! The paper's primary contribution: **Hybrid Associations Models (HAM)** for
//! sequential recommendation.
//!
//! A HAM model scores a candidate item `j` for user `i` given the user's most
//! recent items as the sum of three inner products (Eq. 7/8 of the paper):
//!
//! ```text
//! r_ij = u_i·w_j + h·w_j + o·w_j          (HAMx / HAMm)
//! r_ij = u_i·w_j + s·w_j + o·w_j          (HAMs_x / HAMs_m)
//! ```
//!
//! where `u_i` is the user's long-term preference embedding, `h` / `o` are the
//! mean- or max-pooled embeddings of the previous `n_h` / `n_l` items
//! (high-/low-order associations) and `s` adds recursive item synergies via
//! the latent-cross term `s = h + Σ_k c^(k) ∘ h`.
//!
//! ## Crate layout
//!
//! * [`config`] — model hyper-parameters ([`HamConfig`]), named variants
//!   ([`HamVariant`]) and training settings ([`TrainConfig`]).
//! * [`model`] — the [`HamModel`] itself: embeddings, query-vector
//!   construction, scoring and top-k recommendation.
//! * [`synergy`] — the closed form of the recursive order-`p` synergies.
//! * [`trainer`] — BPR training: a fast manual-gradient path and an
//!   autograd-backed reference path (the two are cross-checked in tests).
//! * [`scorer`] — batch scoring and ranking utilities shared with the
//!   evaluation harness.
//! * [`serialize`] — JSON snapshots of trained models.
//!
//! ## Quickstart
//!
//! ```
//! use ham_core::{HamConfig, HamVariant, TrainConfig, train};
//! use ham_data::synthetic::DatasetProfile;
//! use ham_data::split::{split_dataset, EvalSetting};
//!
//! let data = DatasetProfile::tiny("quickstart").generate(7);
//! let split = split_dataset(&data, EvalSetting::Cut8020);
//! let config = HamConfig::for_variant(HamVariant::HamSM).with_dimensions(16, 4, 2, 2, 2);
//! let train_cfg = TrainConfig { epochs: 2, ..TrainConfig::default() };
//! let model = train(&split.train, data.num_items, &config, &train_cfg, 42);
//! let scores = model.score_all(0, split.train[0].as_slice());
//! assert_eq!(scores.len(), data.num_items);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod generalized;
pub mod model;
pub mod scorer;
pub mod serialize;
pub mod synergy;
pub mod trainer;

pub use config::{HamConfig, HamVariant, TrainConfig};
pub use generalized::{GeneralizedHamConfig, GeneralizedHamModel};
pub use model::HamModel;
pub use scorer::{rank_top_k, score_candidates};
pub use scorer::{LinearHead, Scorer, SeenMask};
pub use trainer::{train, train_with_history, EpochStats, TrainerState};
