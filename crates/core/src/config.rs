//! Model and training configuration.

use ham_tensor::Pooling;
use serde::{Deserialize, Serialize};

/// The named HAM variants evaluated in the paper, plus the two ablations of
/// Section 6.6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HamVariant {
    /// Max pooling, no synergies.
    HamX,
    /// Mean pooling, no synergies.
    HamM,
    /// Max pooling with item synergies.
    HamSX,
    /// Mean pooling with item synergies (the paper's best model).
    HamSM,
    /// `HAMs_m-o`: the low-order association term is ablated.
    HamSMNoLowOrder,
    /// `HAMs_m-u`: the user general-preference term is ablated.
    HamSMNoUser,
}

impl HamVariant {
    /// The name used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            HamVariant::HamX => "HAMx",
            HamVariant::HamM => "HAMm",
            HamVariant::HamSX => "HAMs_x",
            HamVariant::HamSM => "HAMs_m",
            HamVariant::HamSMNoLowOrder => "HAMs_m-o",
            HamVariant::HamSMNoUser => "HAMs_m-u",
        }
    }

    /// The four main variants compared in Tables 3–8.
    pub fn main_variants() -> [HamVariant; 4] {
        [HamVariant::HamX, HamVariant::HamM, HamVariant::HamSX, HamVariant::HamSM]
    }
}

/// Hyper-parameters of a HAM model (Table 1 / Appendix B of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HamConfig {
    /// Embedding dimension `d`.
    pub d: usize,
    /// Number of items in the high-order association window (`n_h`).
    pub n_h: usize,
    /// Number of items in the low-order association window (`n_l`, with
    /// `n_l <= n_h`; `0` ablates the low-order term).
    pub n_l: usize,
    /// Number of target items per training window (`n_p`).
    pub n_p: usize,
    /// Order of the item synergies (`p`); `1` disables synergies.
    pub synergy_order: usize,
    /// Pooling mechanism for the association windows.
    pub pooling: Pooling,
    /// Whether the user general-preference term `u_i·w_j` is used.
    pub use_user_term: bool,
}

impl Default for HamConfig {
    fn default() -> Self {
        // Defaults follow the most common best setting of Table A2.
        Self { d: 64, n_h: 5, n_l: 2, n_p: 3, synergy_order: 2, pooling: Pooling::Mean, use_user_term: true }
    }
}

impl HamConfig {
    /// Builds the configuration for a named variant, keeping the default
    /// window sizes and dimension.
    pub fn for_variant(variant: HamVariant) -> Self {
        let mut cfg = Self::default();
        match variant {
            HamVariant::HamX => {
                cfg.pooling = Pooling::Max;
                cfg.synergy_order = 1;
            }
            HamVariant::HamM => {
                cfg.pooling = Pooling::Mean;
                cfg.synergy_order = 1;
            }
            HamVariant::HamSX => {
                cfg.pooling = Pooling::Max;
                cfg.synergy_order = 2;
            }
            HamVariant::HamSM => {
                cfg.pooling = Pooling::Mean;
                cfg.synergy_order = 2;
            }
            HamVariant::HamSMNoLowOrder => {
                cfg.pooling = Pooling::Mean;
                cfg.synergy_order = 2;
                cfg.n_l = 0;
            }
            HamVariant::HamSMNoUser => {
                cfg.pooling = Pooling::Mean;
                cfg.synergy_order = 2;
                cfg.use_user_term = false;
            }
        }
        cfg
    }

    /// Overrides dimension and window sizes in one call
    /// (`d`, `n_h`, `n_l`, `n_p`, `p`).
    pub fn with_dimensions(mut self, d: usize, n_h: usize, n_l: usize, n_p: usize, p: usize) -> Self {
        self.d = d;
        self.n_h = n_h;
        self.n_l = n_l;
        self.n_p = n_p;
        self.synergy_order = p;
        self
    }

    /// Whether this configuration uses the synergy / latent-cross term.
    pub fn uses_synergies(&self) -> bool {
        self.synergy_order >= 2
    }

    /// Whether this configuration uses the low-order association term.
    pub fn uses_low_order(&self) -> bool {
        self.n_l > 0
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    /// Panics with a descriptive message when the configuration is invalid
    /// (`d == 0`, `n_h == 0`, `n_l > n_h`, `n_p == 0` or
    /// `synergy_order` outside `1..=n_h`).
    pub fn validate(&self) {
        assert!(self.d > 0, "HamConfig: embedding dimension d must be positive");
        assert!(self.n_h > 0, "HamConfig: n_h must be positive");
        assert!(self.n_l <= self.n_h, "HamConfig: n_l ({}) must not exceed n_h ({})", self.n_l, self.n_h);
        assert!(self.n_p > 0, "HamConfig: n_p must be positive");
        assert!(
            self.synergy_order >= 1 && self.synergy_order <= self.n_h,
            "HamConfig: synergy order p ({}) must be in 1..=n_h ({})",
            self.synergy_order,
            self.n_h
        );
    }
}

/// Training hyper-parameters (Section 4.4 / Appendix B).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over all sliding windows.
    pub epochs: usize,
    /// Number of training windows per parameter update (one sparse-row Adam
    /// step per batch). `1` reproduces instance-at-a-time training bit for
    /// bit; larger batches route the BPR forward/backward through the
    /// `Q·Wᵀ` GEMM and rank-1 `axpy_rows` kernels.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// L2 regularization factor `λ`.
    pub weight_decay: f32,
    /// Whether to use the autograd reference trainer instead of the manual
    /// fast path (the manual path only supports `synergy_order == 1`; with
    /// synergies the autograd path is always used).
    pub force_autograd: bool,
    /// Upper bound on concurrent gradient tasks per batch: gradient blocks
    /// are grouped into this many contiguous spans and chunked onto the
    /// shared work-stealing pool. `1` (the default) computes every block
    /// inline. Blocks are fixed-size (256 instances on the manual path, 32
    /// on the autograd path) and merge in batch order, so any thread count
    /// is bit-identical — and threading only takes effect when `batch_size`
    /// exceeds the block size (one-block batches always run inline).
    pub num_threads: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            batch_size: 256,
            learning_rate: 1e-3,
            weight_decay: 1e-3,
            force_autograd: false,
            num_threads: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_names_match_paper() {
        assert_eq!(HamVariant::HamSM.name(), "HAMs_m");
        assert_eq!(HamVariant::HamX.name(), "HAMx");
        assert_eq!(HamVariant::HamSMNoLowOrder.name(), "HAMs_m-o");
        assert_eq!(HamVariant::main_variants().len(), 4);
    }

    #[test]
    fn variant_configs_toggle_the_right_features() {
        let sm = HamConfig::for_variant(HamVariant::HamSM);
        assert!(sm.uses_synergies() && sm.use_user_term && sm.uses_low_order());
        assert_eq!(sm.pooling, Pooling::Mean);

        let x = HamConfig::for_variant(HamVariant::HamX);
        assert!(!x.uses_synergies());
        assert_eq!(x.pooling, Pooling::Max);

        let no_o = HamConfig::for_variant(HamVariant::HamSMNoLowOrder);
        assert!(!no_o.uses_low_order());

        let no_u = HamConfig::for_variant(HamVariant::HamSMNoUser);
        assert!(!no_u.use_user_term);
    }

    #[test]
    fn with_dimensions_overrides_fields() {
        let cfg = HamConfig::default().with_dimensions(32, 7, 1, 5, 3);
        assert_eq!((cfg.d, cfg.n_h, cfg.n_l, cfg.n_p, cfg.synergy_order), (32, 7, 1, 5, 3));
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "n_l")]
    fn invalid_low_order_window_panics() {
        HamConfig::default().with_dimensions(8, 2, 5, 1, 1).validate();
    }

    #[test]
    #[should_panic(expected = "synergy order")]
    fn synergy_order_above_window_panics() {
        HamConfig::default().with_dimensions(8, 3, 1, 1, 4).validate();
    }

    #[test]
    fn default_train_config_matches_paper_appendix() {
        let cfg = TrainConfig::default();
        assert_eq!(cfg.learning_rate, 1e-3);
        assert_eq!(cfg.weight_decay, 1e-3);
    }
}
