//! Item synergies (Section 4.2.2 of the paper).
//!
//! Pairwise synergies are Hadamard products of item embeddings (Eq. 2); they
//! are aggregated per item (Eq. 3), averaged over the window (Eq. 4) and
//! extended to order-`p` synergies recursively (Eq. 5):
//!
//! ```text
//! c^(1)_j = v_j
//! c^(p)_j = Σ_{k≠j} c^(p-1)_j ∘ v_k
//! c^(p)   = mean_j c^(p)_j
//! ```
//!
//! Because `c^(p-1)_j` does not depend on the summation index `k`, the inner
//! sum factors into `c^(p-1)_j ∘ (S − v_j)` with `S = Σ_k v_k`, giving the
//! closed form used here:
//!
//! ```text
//! c^(p) = mean_j [ v_j ∘ (S − v_j)^{∘(p−1)} ]
//! ```
//!
//! The equivalence with the literal recursion is verified by the unit tests in
//! this module.

use ham_tensor::Matrix;

/// Computes the order-`order` synergy vector `c^(order)` of the item
/// embeddings in `rows` (one embedding per row).
///
/// `order == 1` returns the mean embedding (`c^(1) = mean_j v_j`), matching
/// the recursion's base case; synergies proper start at `order == 2`.
///
/// # Panics
/// Panics if `order == 0` or `rows` is empty.
pub fn synergy_vector(rows: &Matrix, order: usize) -> Vec<f32> {
    assert!(order >= 1, "synergy_vector: order must be >= 1");
    assert!(rows.rows() > 0, "synergy_vector: the item window must not be empty");
    let (n, d) = rows.shape();

    // S = Σ_k v_k
    let mut total = vec![0.0f32; d];
    for r in 0..n {
        for (t, v) in total.iter_mut().zip(rows.row(r)) {
            *t += v;
        }
    }

    let mut acc = vec![0.0f32; d];
    for r in 0..n {
        let v = rows.row(r);
        for c in 0..d {
            let rest = total[c] - v[c];
            acc[c] += v[c] * rest.powi(order as i32 - 1);
        }
    }
    let inv = 1.0 / n as f32;
    acc.iter_mut().for_each(|a| *a *= inv);
    acc
}

/// Computes every synergy vector `c^(2) … c^(max_order)`.
/// Returns an empty vector when `max_order < 2`.
pub fn synergy_terms(rows: &Matrix, max_order: usize) -> Vec<Vec<f32>> {
    (2..=max_order).map(|p| synergy_vector(rows, p)).collect()
}

/// Applies the latent-cross combination of Eq. 6:
/// `s = h + Σ_k c^(k) ∘ h`.
pub fn apply_latent_cross(h: &[f32], synergies: &[Vec<f32>]) -> Vec<f32> {
    let mut s = h.to_vec();
    for c in synergies {
        assert_eq!(c.len(), h.len(), "apply_latent_cross: dimension mismatch");
        for ((s_i, &c_i), &h_i) in s.iter_mut().zip(c).zip(h) {
            *s_i += c_i * h_i;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Literal implementation of Eq. 2–5 for cross-checking the closed form.
    fn brute_force_synergy(rows: &Matrix, order: usize) -> Vec<f32> {
        let (n, d) = rows.shape();
        // c^(1)_j = v_j
        let mut per_item: Vec<Vec<f32>> = (0..n).map(|j| rows.row(j).to_vec()).collect();
        for _ in 2..=order {
            let mut next: Vec<Vec<f32>> = Vec::with_capacity(n);
            for (j, prev) in per_item.iter().enumerate() {
                let mut acc = vec![0.0f32; d];
                for k in 0..n {
                    if k == j {
                        continue;
                    }
                    for (c, a) in acc.iter_mut().enumerate() {
                        *a += prev[c] * rows.get(k, c);
                    }
                }
                next.push(acc);
            }
            per_item = next;
        }
        let mut mean = vec![0.0f32; d];
        for item in &per_item {
            for (m, v) in mean.iter_mut().zip(item) {
                *m += v;
            }
        }
        mean.iter_mut().for_each(|m| *m /= n as f32);
        mean
    }

    fn example_rows() -> Matrix {
        Matrix::from_rows(&[&[0.5, -1.0, 2.0], &[1.5, 0.25, -0.5], &[-0.75, 1.0, 0.0], &[0.2, 0.3, 0.4]])
    }

    #[test]
    fn closed_form_matches_recursion_order2() {
        let rows = example_rows();
        let fast = synergy_vector(&rows, 2);
        let slow = brute_force_synergy(&rows, 2);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((a - b).abs() < 1e-5, "order 2 mismatch: {a} vs {b}");
        }
    }

    #[test]
    fn closed_form_matches_recursion_order3_and_4() {
        let rows = example_rows();
        for order in [3, 4] {
            let fast = synergy_vector(&rows, order);
            let slow = brute_force_synergy(&rows, order);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((a - b).abs() < 1e-4, "order {order} mismatch: {a} vs {b}");
            }
        }
    }

    #[test]
    fn order_one_is_the_mean_embedding() {
        let rows = example_rows();
        let c1 = synergy_vector(&rows, 1);
        let mean = rows.mean_rows();
        assert_eq!(c1, mean);
    }

    #[test]
    fn pairwise_synergy_of_two_items_is_their_hadamard_product() {
        // With exactly two items, c^(2) = mean(v1∘v2, v2∘v1) = v1∘v2.
        let rows = Matrix::from_rows(&[&[2.0, 3.0], &[4.0, -1.0]]);
        let c2 = synergy_vector(&rows, 2);
        assert_eq!(c2, vec![8.0, -3.0]);
    }

    #[test]
    fn synergy_terms_collects_all_orders() {
        let rows = example_rows();
        let terms = synergy_terms(&rows, 4);
        assert_eq!(terms.len(), 3);
        assert!(synergy_terms(&rows, 1).is_empty());
        assert_eq!(terms[0], synergy_vector(&rows, 2));
    }

    #[test]
    fn latent_cross_with_no_synergies_is_identity() {
        let h = [1.0, 2.0, 3.0];
        assert_eq!(apply_latent_cross(&h, &[]), h.to_vec());
    }

    #[test]
    fn latent_cross_strengthens_aligned_dimensions() {
        let h = [1.0, 2.0];
        let synergies = vec![vec![0.5, -0.25]];
        // s = h + c ∘ h = [1 + 0.5, 2 - 0.5]
        assert_eq!(apply_latent_cross(&h, &synergies), vec![1.5, 1.5]);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_window_panics() {
        let _ = synergy_vector(&Matrix::zeros(0, 3), 2);
    }
}
