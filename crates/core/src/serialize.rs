//! Saving and loading trained models as JSON snapshots.
//!
//! A snapshot contains the full configuration and all three embedding
//! matrices, so a trained model can be reloaded for serving or further
//! analysis without retraining.

use crate::model::HamModel;
use std::fmt;
use std::fs;
use std::path::Path;

/// Errors produced when persisting or restoring a model.
#[derive(Debug)]
pub enum SerializeError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
}

impl fmt::Display for SerializeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SerializeError::Io(e) => write!(f, "i/o error: {e}"),
            SerializeError::Json(e) => write!(f, "json error: {e}"),
        }
    }
}

impl std::error::Error for SerializeError {}

impl From<std::io::Error> for SerializeError {
    fn from(e: std::io::Error) -> Self {
        SerializeError::Io(e)
    }
}

impl From<serde_json::Error> for SerializeError {
    fn from(e: serde_json::Error) -> Self {
        SerializeError::Json(e)
    }
}

/// Serializes a model to a JSON string.
pub fn to_json(model: &HamModel) -> Result<String, SerializeError> {
    Ok(serde_json::to_string(model)?)
}

/// Restores a model from a JSON string.
pub fn from_json(json: &str) -> Result<HamModel, SerializeError> {
    Ok(serde_json::from_str(json)?)
}

/// Saves a model snapshot to disk.
pub fn save_model(model: &HamModel, path: impl AsRef<Path>) -> Result<(), SerializeError> {
    fs::write(path, to_json(model)?)?;
    Ok(())
}

/// Loads a model snapshot from disk.
pub fn load_model(path: impl AsRef<Path>) -> Result<HamModel, SerializeError> {
    let text = fs::read_to_string(path)?;
    from_json(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HamConfig, HamVariant};

    fn model() -> HamModel {
        let config = HamConfig::for_variant(HamVariant::HamSM).with_dimensions(8, 4, 2, 2, 2);
        HamModel::new(3, 15, config, 7)
    }

    #[test]
    fn json_roundtrip_preserves_scores() {
        let m = model();
        let restored = from_json(&to_json(&m).unwrap()).unwrap();
        let seq = vec![1, 2, 3, 4];
        assert_eq!(m.score_all(1, &seq), restored.score_all(1, &seq));
        assert_eq!(m.config(), restored.config());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("ham_core_serialize_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        let m = model();
        save_model(&m, &path).unwrap();
        let restored = load_model(&path).unwrap();
        assert_eq!(restored.num_items(), m.num_items());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn invalid_json_is_an_error() {
        assert!(matches!(from_json("not json"), Err(SerializeError::Json(_))));
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(matches!(load_model("/no/such/model.json"), Err(SerializeError::Io(_))));
    }
}
