//! Scoring and ranking utilities shared by the model, the evaluation harness
//! and the run-time benchmarks: the [`Scorer`] trait with its batched entry
//! point, the reusable [`SeenMask`] catalogue bitmap, and candidate-scoring
//! helpers.

use ham_data::dataset::ItemId;
use ham_tensor::ops::top_k_indices;
use ham_tensor::Matrix;
use std::collections::HashSet;

/// A model that can score every catalogue item for a user, one user at a time
/// or in batches.
///
/// The batched entry point is what the threaded evaluation protocol
/// (`ham_eval::protocol::evaluate_batch`) calls: implementors with a
/// linear scoring head (`r = q · Wᵀ`) override it to build the query matrix
/// once and answer the whole batch with a single blocked GEMM, which is the
/// paper's Table 14 efficiency story made concrete.
pub trait Scorer {
    /// Number of items the model can score.
    fn num_items(&self) -> usize;

    /// Scores every item for `user` given the user's chronological history.
    fn score_all(&self, user: usize, sequence: &[ItemId]) -> Vec<f32>;

    /// The model's linear scoring head, when it has one.
    ///
    /// A model whose scores factor as `r = q · Wᵀ` (a per-user query vector
    /// against a fixed candidate matrix) returns `Some`; the serving layer
    /// uses the head to shard `W` row-wise and score each shard with the
    /// GEMV/GEMM kernels. Models without a linear head (none in this
    /// workspace today) keep the `None` default and cannot be sharded.
    fn linear_head(&self) -> Option<LinearHead<'_>> {
        None
    }

    /// Scores every item for a batch of users; row `i` of the result equals
    /// `score_all(users[i], sequences[i])` within float rounding (≤ 1e-5).
    ///
    /// The default falls back to one `score_all` call per user; override when
    /// a batched kernel is available.
    ///
    /// # Panics
    /// Panics if `users` and `sequences` differ in length.
    fn score_batch(&self, users: &[usize], sequences: &[&[ItemId]]) -> Matrix {
        score_batch_fallback(self.num_items(), users, sequences, |u, s| self.score_all(u, s))
    }
}

impl Scorer for crate::model::HamModel {
    fn num_items(&self) -> usize {
        crate::model::HamModel::num_items(self)
    }

    fn score_all(&self, user: usize, sequence: &[ItemId]) -> Vec<f32> {
        crate::model::HamModel::score_all(self, user, sequence)
    }

    fn score_batch(&self, users: &[usize], sequences: &[&[ItemId]]) -> Matrix {
        crate::model::HamModel::score_batch(self, users, sequences)
    }

    fn linear_head(&self) -> Option<LinearHead<'_>> {
        Some(LinearHead::new(self.candidate_item_embeddings(), move |u, h| self.query_vector(u, h)))
    }
}

impl Scorer for crate::generalized::GeneralizedHamModel {
    fn num_items(&self) -> usize {
        crate::generalized::GeneralizedHamModel::num_items(self)
    }

    fn score_all(&self, user: usize, sequence: &[ItemId]) -> Vec<f32> {
        crate::generalized::GeneralizedHamModel::score_all(self, user, sequence)
    }

    fn score_batch(&self, users: &[usize], sequences: &[&[ItemId]]) -> Matrix {
        crate::generalized::GeneralizedHamModel::score_batch(self, users, sequences)
    }

    fn linear_head(&self) -> Option<LinearHead<'_>> {
        Some(LinearHead::new(self.base().candidate_item_embeddings(), move |u, h| self.query_vector(u, h)))
    }
}

/// The boxed query-builder closure of a [`LinearHead`]: `(user, history)`
/// to the query vector `q`.
pub type QueryFn<'m> = Box<dyn Fn(usize, &[ItemId]) -> Vec<f32> + Send + Sync + 'm>;

/// A linear scoring head `r = q · Wᵀ`: the per-user query builder together
/// with the candidate-embedding matrix it is scored against.
///
/// Every model in this workspace — the HAM variants and all baselines —
/// scores through such a head, which is what makes catalogue sharding
/// possible: the serving layer (`ham-serve`) splits `W` row-wise, scores
/// each shard with the same GEMV/GEMM kernels the single-node path uses
/// (per-row dot products are bit-identical either way), and merges the
/// per-shard top-k exactly.
pub struct LinearHead<'m> {
    candidates: &'m Matrix,
    query: QueryFn<'m>,
}

impl<'m> LinearHead<'m> {
    /// Builds a head from the candidate matrix and a query-vector closure.
    /// The closure must return `candidates.cols()` values per call.
    pub fn new(candidates: &'m Matrix, query: impl Fn(usize, &[ItemId]) -> Vec<f32> + Send + Sync + 'm) -> Self {
        Self { candidates, query: Box::new(query) }
    }

    /// The candidate-embedding matrix `W` (one row per item).
    pub fn candidates(&self) -> &'m Matrix {
        self.candidates
    }

    /// The embedding dimension `d` shared by queries and candidates.
    pub fn dim(&self) -> usize {
        self.candidates.cols()
    }

    /// Number of items the head can score.
    pub fn num_items(&self) -> usize {
        self.candidates.rows()
    }

    /// The query vector `q` for one user and history.
    pub fn query_vector(&self, user: usize, history: &[ItemId]) -> Vec<f32> {
        (self.query)(user, history)
    }

    /// Builds the query matrix `Q` (one query row per user) for a batch.
    ///
    /// # Panics
    /// Panics if `users` and `histories` differ in length.
    pub fn batch_queries(&self, users: &[usize], histories: &[&[ItemId]]) -> Matrix {
        assert_eq!(
            users.len(),
            histories.len(),
            "batch_queries: {} users but {} histories",
            users.len(),
            histories.len()
        );
        let mut queries = Matrix::zeros(users.len(), self.dim());
        for (i, (&user, history)) in users.iter().zip(histories).enumerate() {
            queries.row_mut(i).copy_from_slice(&self.query_vector(user, history));
        }
        queries
    }
}

/// Assembles a score matrix by calling a per-user scorer once per row (the
/// default-implementation body of [`Scorer::score_batch`]).
///
/// `ham_baselines::common::score_batch_rows` is the same shape for the
/// baselines' trait; the two crates cannot share it without a dependency
/// between them, so keep the implementations in sync.
pub fn score_batch_fallback(
    num_items: usize,
    users: &[usize],
    sequences: &[&[ItemId]],
    score_all: impl Fn(usize, &[ItemId]) -> Vec<f32>,
) -> Matrix {
    assert_eq!(users.len(), sequences.len(), "score_batch: {} users but {} sequences", users.len(), sequences.len());
    let mut out = Matrix::zeros(users.len(), num_items);
    for (i, (&user, sequence)) in users.iter().zip(sequences).enumerate() {
        let scores = score_all(user, sequence);
        assert_eq!(scores.len(), num_items, "score_all returned {} scores for {num_items} items", scores.len());
        out.row_mut(i).copy_from_slice(&scores);
    }
    out
}

/// Builds the query matrix `Q` (one `query_vector` row per user) and scores
/// the whole batch against `candidates` with one blocked `Q · Wᵀ` GEMM — the
/// shared body of the HAM models' `score_batch` implementations.
///
/// # Panics
/// Panics if `users` and `histories` differ in length.
pub fn batched_query_scores(
    users: &[usize],
    histories: &[&[ItemId]],
    d: usize,
    candidates: &Matrix,
    query_vector: impl Fn(usize, &[ItemId]) -> Vec<f32>,
) -> Matrix {
    assert_eq!(users.len(), histories.len(), "score_batch: {} users but {} histories", users.len(), histories.len());
    let mut queries = Matrix::zeros(users.len(), d);
    for (i, (&user, history)) in users.iter().zip(histories).enumerate() {
        queries.row_mut(i).copy_from_slice(&query_vector(user, history));
    }
    queries.matmul_transposed(candidates)
}

/// A reusable boolean bitmap over the catalogue for masking already-seen
/// items out of a score vector.
///
/// Replaces the per-call `HashSet` the masking paths used to build: marking
/// and unmarking the seen items is O(history) with no hashing and no
/// allocation after construction, so a serving loop can reuse one mask
/// across every request.
#[derive(Debug, Clone)]
pub struct SeenMask {
    seen: Vec<bool>,
}

impl SeenMask {
    /// Creates an all-clear mask for a catalogue of `num_items` items.
    pub fn new(num_items: usize) -> Self {
        Self { seen: vec![false; num_items] }
    }

    /// Catalogue size the mask was built for.
    pub fn num_items(&self) -> usize {
        self.seen.len()
    }

    /// Marks every in-catalogue item of `seen_items` as seen. Pair with
    /// [`Self::clear`] after ranking; between the two, [`Self::bits`] is the
    /// bitmap the fused mask+select kernel
    /// (`ham_tensor::ops::top_k_indices_masked`) consumes, so the score
    /// buffer itself never has to be written with `-inf` sentinels.
    pub fn mark(&mut self, seen_items: &[ItemId]) {
        for &item in seen_items {
            if item < self.seen.len() {
                self.seen[item] = true;
            }
        }
    }

    /// Clears the marks of [`Self::mark`], leaving the bitmap all-clear in
    /// O(history) instead of O(catalogue).
    pub fn clear(&mut self, seen_items: &[ItemId]) {
        for &item in seen_items {
            if item < self.seen.len() {
                self.seen[item] = false;
            }
        }
    }

    /// Grows or shrinks the mask to a new catalogue size (serving loops keep
    /// one mask across hot-swapped models); added slots start clear.
    pub fn resize(&mut self, num_items: usize) {
        self.seen.resize(num_items, false);
    }

    /// Clears every mark in O(catalogue) — the recovery path when a panic
    /// may have unwound between [`Self::mark`] and [`Self::clear`].
    pub fn reset(&mut self) {
        self.seen.fill(false);
    }

    /// The raw seen bitmap (one flag per catalogue item).
    pub fn bits(&self) -> &[bool] {
        &self.seen
    }
}

/// Ranks all items by score and returns the top `k`, optionally masking the
/// items in `exclude` (typically the user's training items, following the
/// evaluation protocol of HGN/Caser which recommend only unseen items).
pub fn rank_top_k(scores: &[f32], k: usize, exclude: Option<&HashSet<ItemId>>) -> Vec<ItemId> {
    match exclude {
        None => top_k_indices(scores, k),
        Some(excluded) => {
            let mut masked = scores.to_vec();
            for (item, score) in masked.iter_mut().enumerate() {
                if excluded.contains(&item) {
                    *score = f32::NEG_INFINITY;
                }
            }
            top_k_indices(&masked, k)
        }
    }
}

/// Scores a set of candidate items given a query vector and a candidate
/// embedding matrix (`scores[c] = q · W[candidates[c]]`).
pub fn score_candidates(query: &[f32], candidate_embeddings: &ham_tensor::Matrix, candidates: &[ItemId]) -> Vec<f32> {
    candidates.iter().map(|&item| ham_tensor::matrix::dot(query, candidate_embeddings.row(item))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HamConfig, HamVariant};
    use crate::model::HamModel;

    #[test]
    fn rank_without_exclusion_is_plain_top_k() {
        let scores = [0.1, 0.9, 0.5];
        assert_eq!(rank_top_k(&scores, 2, None), vec![1, 2]);
    }

    #[test]
    fn excluded_items_never_appear() {
        let scores = [0.9, 0.8, 0.7, 0.6];
        let exclude: HashSet<usize> = [0, 1].into_iter().collect();
        assert_eq!(rank_top_k(&scores, 2, Some(&exclude)), vec![2, 3]);
    }

    #[test]
    fn excluding_everything_still_returns_k_items() {
        let scores = [0.9, 0.8];
        let exclude: HashSet<usize> = [0, 1].into_iter().collect();
        // all scores are -inf but the ranking is still deterministic
        assert_eq!(rank_top_k(&scores, 1, Some(&exclude)).len(), 1);
    }

    #[test]
    fn score_candidates_matches_dot_products() {
        let w = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let q = [2.0, 3.0];
        assert_eq!(score_candidates(&q, &w, &[0, 2]), vec![2.0, 5.0]);
    }

    #[test]
    fn seen_mask_ignores_out_of_catalogue_items() {
        // Histories may mention ids beyond a truncated catalogue; marking
        // must skip them (the HashSet-based masking it replaced did).
        let mut mask = SeenMask::new(3);
        mask.mark(&[1, 7, 100]);
        assert_eq!(mask.bits(), &[false, true, false]);
        let scores = [1.0f32, 2.0, 3.0];
        assert_eq!(ham_tensor::ops::top_k_indices_masked(&scores, 2, mask.bits()), vec![2, 0]);
    }

    #[test]
    fn seen_mask_marks_duplicates_and_resets() {
        let mut mask = SeenMask::new(5);
        mask.mark(&[1, 3, 3]);
        assert_eq!(mask.bits(), &[false, true, false, true, false]);
        // reusable: clearing (duplicates included) leaves the bitmap clean
        // for the next request in O(history), not O(catalogue).
        mask.clear(&[1, 3, 3]);
        mask.mark(&[0]);
        assert_eq!(mask.bits(), &[true, false, false, false, false]);
    }

    #[test]
    fn scorer_trait_batch_agrees_with_per_user_path() {
        let config = HamConfig::for_variant(HamVariant::HamSM).with_dimensions(8, 4, 2, 2, 2);
        let model = HamModel::new(4, 25, config, 11);
        let scorer: &dyn Scorer = &model;
        let sequences: Vec<Vec<usize>> = vec![vec![1, 2, 3], vec![7], vec![4, 9, 2, 0, 5]];
        let users = [0usize, 2, 3];
        let seq_refs: Vec<&[usize]> = sequences.iter().map(|s| s.as_slice()).collect();
        let batch = scorer.score_batch(&users, &seq_refs);
        assert_eq!(batch.shape(), (3, 25));
        for (i, (&u, s)) in users.iter().zip(&seq_refs).enumerate() {
            let single = scorer.score_all(u, s);
            for (j, (&b, &sgl)) in batch.row(i).iter().zip(&single).enumerate() {
                assert!((b - sgl).abs() < 1e-5, "user {u} item {j}: {b} vs {sgl}");
            }
        }
    }

    #[test]
    fn linear_head_reproduces_score_all() {
        let config = HamConfig::for_variant(HamVariant::HamSX).with_dimensions(8, 4, 2, 2, 2);
        let model = HamModel::new(3, 15, config, 5);
        let head = Scorer::linear_head(&model).expect("HAM has a linear head");
        assert_eq!(head.num_items(), 15);
        assert_eq!(head.dim(), 8);
        let seq = vec![1usize, 4, 9];
        let q = head.query_vector(2, &seq);
        // Same kernel, same query: the head path is bit-identical to score_all.
        assert_eq!(head.candidates().matvec_transposed(&q), model.score_all(2, &seq));
        let queries = head.batch_queries(&[0, 2], &[&seq, &[3usize, 3]]);
        assert_eq!(queries.shape(), (2, 8));
        assert_eq!(queries.row(0), q.as_slice().first().map(|_| head.query_vector(0, &seq)).unwrap().as_slice());
    }

    #[test]
    fn seen_mask_mark_bits_clear_roundtrip() {
        let mut mask = SeenMask::new(4);
        mask.mark(&[1, 3, 99]);
        assert_eq!(mask.bits(), &[false, true, false, true]);
        mask.clear(&[1, 3, 99]);
        assert!(mask.bits().iter().all(|&b| !b));
    }

    #[test]
    #[should_panic(expected = "users but")]
    fn mismatched_batch_lengths_panic() {
        let config = HamConfig::for_variant(HamVariant::HamM).with_dimensions(4, 2, 1, 1, 1);
        let model = HamModel::new(2, 10, config, 1);
        let seq: Vec<usize> = vec![1, 2];
        let _ = model.score_batch(&[0, 1], &[seq.as_slice()]);
    }
}
