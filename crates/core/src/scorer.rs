//! Ranking utilities shared by the model, the evaluation harness and the
//! run-time benchmarks.

use ham_data::dataset::ItemId;
use ham_tensor::ops::top_k_indices;
use std::collections::HashSet;

/// Ranks all items by score and returns the top `k`, optionally masking the
/// items in `exclude` (typically the user's training items, following the
/// evaluation protocol of HGN/Caser which recommend only unseen items).
pub fn rank_top_k(scores: &[f32], k: usize, exclude: Option<&HashSet<ItemId>>) -> Vec<ItemId> {
    match exclude {
        None => top_k_indices(scores, k),
        Some(excluded) => {
            let mut masked = scores.to_vec();
            for (item, score) in masked.iter_mut().enumerate() {
                if excluded.contains(&item) {
                    *score = f32::NEG_INFINITY;
                }
            }
            top_k_indices(&masked, k)
        }
    }
}

/// Scores a set of candidate items given a query vector and a candidate
/// embedding matrix (`scores[c] = q · W[candidates[c]]`).
pub fn score_candidates(query: &[f32], candidate_embeddings: &ham_tensor::Matrix, candidates: &[ItemId]) -> Vec<f32> {
    candidates
        .iter()
        .map(|&item| ham_tensor::matrix::dot(query, candidate_embeddings.row(item)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ham_tensor::Matrix;

    #[test]
    fn rank_without_exclusion_is_plain_top_k() {
        let scores = [0.1, 0.9, 0.5];
        assert_eq!(rank_top_k(&scores, 2, None), vec![1, 2]);
    }

    #[test]
    fn excluded_items_never_appear() {
        let scores = [0.9, 0.8, 0.7, 0.6];
        let exclude: HashSet<usize> = [0, 1].into_iter().collect();
        assert_eq!(rank_top_k(&scores, 2, Some(&exclude)), vec![2, 3]);
    }

    #[test]
    fn excluding_everything_still_returns_k_items() {
        let scores = [0.9, 0.8];
        let exclude: HashSet<usize> = [0, 1].into_iter().collect();
        // all scores are -inf but the ranking is still deterministic
        assert_eq!(rank_top_k(&scores, 1, Some(&exclude)).len(), 1);
    }

    #[test]
    fn score_candidates_matches_dot_products() {
        let w = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let q = [2.0, 3.0];
        assert_eq!(score_candidates(&q, &w, &[0, 2]), vec![2.0, 5.0]);
    }
}
