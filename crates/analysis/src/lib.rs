//! `ham-analysis`: the workspace's invariant checker.
//!
//! PRs 1–9 built a serving stack whose correctness rests on three kinds of
//! discipline that silently rot without tooling: `unsafe` SIMD kernels with
//! prose preconditions, lock-free atomics scattered across four crates, and
//! a request hot path whose "allocation-free" and "panic-isolated" claims
//! lived only in PR descriptions. This crate turns those claims into
//! machine-checked rules, enforced by the `ham-lint` binary on every commit
//! (the `static-analysis` CI job) and by this crate's own test suite.
//!
//! There is no `syn` here by design — crates.io is unreachable, consistent
//! with the workspace's vendored-stub policy — so the analysis is a
//! hand-rolled [`lexer`] (comment/string/char-literal aware) plus a
//! [`scan`] layer that understands braces, attributes, `#[cfg(test)]`
//! regions, and justification comments. That is enough for every rule,
//! because each rule keys off lexically unambiguous tokens.
//!
//! The rule families (see [`rules`]):
//!
//! - **unsafe-audit** — `unsafe` requires `// SAFETY:`; `#[target_feature]`
//!   functions must live in their tier module and stay dispatcher-private;
//! - **atomic-ordering** — `Ordering::*` in audited concurrency modules
//!   requires `// ordering:` or a [`policy`] table entry;
//! - **hot-path-alloc** — marker-tagged functions must not allocate
//!   (escape hatch: `allow(alloc, reason)`);
//! - **panic-surface** — no `unwrap`/`expect` in serve/online runtime code
//!   without `allow(panic, reason)`;
//! - **crate-attrs** — unsafe-free crates must `#![forbid(unsafe_code)]`,
//!   ham-tensor must `#![deny(unsafe_op_in_unsafe_fn)]`.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod policy;
pub mod rules;
pub mod scan;

pub use rules::Finding;
use scan::SourceFile;

/// Runs the per-file rule families over one parsed file.
pub fn lint_file(file: &SourceFile, findings: &mut Vec<Finding>) {
    rules::unsafe_audit::check(file, findings);
    rules::atomics::check(file, findings);
    rules::hotpath::check(file, findings);
    rules::panics::check(file, findings);
}

/// Lints a single source text under a logical workspace-relative path.
/// The path matters: several rules scope themselves by it (audited modules,
/// tier-module placement, serve/online panic surface).
pub fn lint_source(path: &str, source: &str) -> Vec<Finding> {
    let file = SourceFile::parse(path, source);
    let mut findings = Vec::new();
    lint_file(&file, &mut findings);
    findings
}

/// Lints a set of parsed files: the per-file families plus the
/// workspace-level crate-attribute check, sorted by path and line.
pub fn lint_workspace_files(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        lint_file(file, &mut findings);
    }
    rules::crate_attrs::check(files, &mut findings);
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    findings
}
