//! The rule families. Each rule takes a parsed [`SourceFile`] and appends
//! [`Finding`]s; [`crate::lint_file`] runs them all. Workspace-level checks
//! (crate attributes) live in [`crate_attrs`] and run over the whole file
//! set at once.

pub mod atomics;
pub mod crate_attrs;
pub mod hotpath;
pub mod panics;
pub mod unsafe_audit;

use crate::scan::SourceFile;

/// One lint finding, addressed to a human: where, which rule, and what the
/// accepted justifications would have been.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

pub(crate) fn push(findings: &mut Vec<Finding>, file: &SourceFile, idx: usize, rule: &'static str, message: String) {
    findings.push(Finding { path: file.path.clone(), line: idx + 1, rule, message });
}
