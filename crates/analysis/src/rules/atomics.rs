//! Rule family 2: the atomic-ordering policy.
//!
//! In the audited concurrency-critical modules, every use of an atomic
//! `Ordering::*` variant must either carry an `// ordering:` justification
//! comment at the use site or be covered by an entry in the checked-in
//! [`policy table`](crate::policy). PR 7 shipped a real ordering race in
//! span delivery; this rule makes "why is this ordering sufficient?" a
//! question every future diff in these files has to answer in writing.
//!
//! Only the five atomic variants are matched — `std::cmp::Ordering`'s
//! `Less`/`Equal`/`Greater` (ubiquitous in the kernels and stats code) are
//! not atomics and are ignored. `#[cfg(test)]` items are exempt.

use super::{push, Finding};
use crate::policy;
use crate::scan::{has_marker, justification, SourceFile};

pub const RULE: &str = "atomic-ordering";

/// Path fragments selecting the audited modules (the issue's list: the pool
/// workers, all of telemetry, the serve dispatcher and degrade path, and
/// the fault-injection registry).
const AUDITED: &[&str] = &[
    "crates/tensor/src/pool/workers.rs",
    "crates/telemetry/src/",
    "crates/serve/src/server.rs",
    "crates/serve/src/degrade.rs",
    "crates/faults/src/",
];

const ATOMIC_VARIANTS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

pub fn audited(path: &str) -> bool {
    AUDITED.iter().any(|fragment| path.contains(fragment))
}

pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !audited(&file.path) {
        return;
    }
    for idx in 0..file.lines.len() {
        if file.test_mask[idx] {
            continue;
        }
        let code = file.lines[idx].code.as_str();
        let mut from = 0;
        while let Some(pos) = code[from..].find("Ordering::") {
            let at = from + pos + "Ordering::".len();
            from = at;
            let rest = &code[at..];
            let Some(variant) = ATOMIC_VARIANTS.iter().find(|v| {
                rest.starts_with(**v) && !rest[v.len()..].starts_with(|c: char| c.is_ascii_alphanumeric() || c == '_')
            }) else {
                continue; // cmp::Ordering or a qualified path — not an atomic
            };
            if policy::lookup(&file.path, variant).is_some() {
                continue;
            }
            if has_marker(&justification(&file.lines, idx), "ordering:") {
                continue;
            }
            push(
                findings,
                file,
                idx,
                RULE,
                format!(
                    "`Ordering::{variant}` in an audited module without an `// ordering:` comment or a policy-table \
                     entry"
                ),
            );
        }
    }
}
