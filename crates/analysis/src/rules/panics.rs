//! Rule family 4: the panic-surface lint.
//!
//! The serving and online-learning crates are the layers where a panic
//! reaches a customer: a worker that unwinds mid-request turns into a shed
//! or a poisoned lock at best. Runtime code there must not `unwrap()` or
//! `expect()` unless the site carries an `allow(panic, reason)` annotation
//! arguing the failure is genuinely unreachable (a construction-time
//! invariant, or startup code that runs before traffic).
//!
//! `#[cfg(test)]` items are exempt — tests *should* unwrap. Non-panicking
//! relatives (`unwrap_or`, `unwrap_or_else`, `unwrap_or_default`,
//! `expect_err` in tests) do not match.

use super::{push, Finding};
use crate::scan::{has_marker, justification, SourceFile};

pub const RULE: &str = "panic-surface";

pub const ALLOW: &str = "ham-lint: allow(panic";

/// Crate source trees whose runtime code is customer-facing.
const AUDITED: &[&str] = &["crates/serve/src/", "crates/online/src/"];

pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !AUDITED.iter().any(|fragment| file.path.contains(fragment)) {
        return;
    }
    for idx in 0..file.lines.len() {
        if file.test_mask[idx] {
            continue;
        }
        let code = file.lines[idx].code.as_str();
        // `.unwrap()` is exact; `.expect(` cannot match `.expect_err(`.
        let unwraps = code.matches(".unwrap()").count();
        let expects = code.matches(".expect(").count();
        if unwraps + expects == 0 {
            continue;
        }
        if has_marker(&justification(&file.lines, idx), ALLOW) {
            continue;
        }
        let what = match (unwraps, expects) {
            (0, _) => "`.expect()`",
            (_, 0) => "`.unwrap()`",
            _ => "`.unwrap()`/`.expect()`",
        };
        push(
            findings,
            file,
            idx,
            RULE,
            format!("{what} in serve/online runtime code without an allow(panic) annotation"),
        );
    }
}
