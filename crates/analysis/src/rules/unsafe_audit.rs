//! Rule family 1: the unsafe audit.
//!
//! Three checks keep the workspace's `unsafe` surface auditable:
//!
//! 1. every line containing the `unsafe` keyword must be justified by a
//!    `// SAFETY:` comment (trailing, or in the comment block directly
//!    above — doc sections headed `# Safety` count for `unsafe fn` items);
//! 2. every `#[target_feature(enable = ...)]` function must live in the
//!    tier module matching the feature it enables (`avx2.rs` / `avx512.rs`)
//!    and must not be crate-public — the only path to a tier function is the
//!    `kernels/mod.rs` dispatcher, whose entry points are detection-guarded;
//! 3. tier modules must stay private: `pub mod avx2`/`avx512` or a
//!    `pub use` re-export of their items would open a detection-bypassing
//!    path and is rejected outright.

use super::{push, Finding};
use crate::scan::{has_marker, justification, word_positions, SourceFile};

pub const RULE: &str = "unsafe-audit";

pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    for idx in 0..file.lines.len() {
        let code = file.lines[idx].code.as_str();

        if !word_positions(code, "unsafe").is_empty() {
            let just = justification(&file.lines, idx);
            if !has_marker(&just, "SAFETY:") && !has_marker(&just, "# Safety") {
                push(
                    findings,
                    file,
                    idx,
                    RULE,
                    "`unsafe` without a `// SAFETY:` comment on the line or in the comment block above".to_string(),
                );
            }
        }

        if code.contains("#[target_feature") {
            check_target_feature(file, idx, findings);
        }

        for tier in ["avx2", "avx512"] {
            if code.contains(&format!("pub mod {tier}")) {
                push(
                    findings,
                    file,
                    idx,
                    RULE,
                    format!("tier module `{tier}` must stay private — it is only reachable through the dispatcher"),
                );
            }
            if code.trim_start().starts_with("pub use") && code.contains(&format!("{tier}::")) {
                push(
                    findings,
                    file,
                    idx,
                    RULE,
                    format!("re-exporting from `{tier}` bypasses the dispatcher's detection guard"),
                );
            }
        }
    }
}

fn check_target_feature(file: &SourceFile, idx: usize, findings: &mut Vec<Finding>) {
    // The enabled features live in a string literal, blanked in the code
    // channel — read them from the raw line.
    let raw = file.lines[idx].raw.as_str();
    let required = if raw.contains("avx512") {
        Some("avx512.rs")
    } else if raw.contains("avx2") {
        Some("avx2.rs")
    } else {
        None
    };
    match required {
        Some(module) if !file.path.ends_with(module) => push(
            findings,
            file,
            idx,
            RULE,
            format!("#[target_feature] enabling this tier belongs in `{module}`, not `{}`", file.path),
        ),
        None => push(
            findings,
            file,
            idx,
            RULE,
            "#[target_feature] enables no known tier (avx2/avx512) — no tier module owns it".to_string(),
        ),
        _ => {}
    }

    // The annotated fn itself must not be crate-public; `pub(super)` or
    // private keeps the dispatcher the only way in.
    for fn_idx in idx..file.lines.len().min(idx + 8) {
        let code = file.lines[fn_idx].code.as_str();
        if word_positions(code, "fn").is_empty() {
            continue;
        }
        if code.trim_start().starts_with("pub fn") || code.trim_start().starts_with("pub unsafe fn") {
            push(
                findings,
                file,
                fn_idx,
                RULE,
                "#[target_feature] fn must not be crate-public — callers must go through the dispatcher".to_string(),
            );
        }
        break;
    }
}
