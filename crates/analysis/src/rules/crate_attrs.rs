//! Workspace-level check: crate-root lint attributes.
//!
//! Crates that need no `unsafe` must say so irrevocably with
//! `#![forbid(unsafe_code)]` — the compiler then rejects any future unsafe
//! block, including ones added by well-meaning refactors. `ham-tensor`, the
//! one crate that legitimately holds unsafe (the SIMD tiers and the pool's
//! scope transmute), must instead carry `#![deny(unsafe_op_in_unsafe_fn)]`
//! so every unsafe operation sits in an explicit, SAFETY-commentable block
//! even inside `unsafe fn`.

use super::Finding;
use crate::scan::SourceFile;

pub const RULE: &str = "crate-attrs";

/// Crate directories (under `crates/`) that must forbid unsafe code.
pub const FORBID_UNSAFE: &[&str] = &[
    "analysis",
    "autograd",
    "baselines",
    "bench",
    "core",
    "data",
    "eval",
    "experiments",
    "faults",
    "online",
    "serve",
    "telemetry",
];

pub fn check(files: &[SourceFile], findings: &mut Vec<Finding>) {
    for file in files {
        let Some(krate) = lib_rs_crate(&file.path) else { continue };
        let has = |attr: &str| file.lines.iter().any(|l| l.code.contains(attr));
        if FORBID_UNSAFE.contains(&krate) && !has("#![forbid(unsafe_code)]") {
            findings.push(Finding {
                path: file.path.clone(),
                line: 1,
                rule: RULE,
                message: format!("crate `{krate}` holds no unsafe code and must declare #![forbid(unsafe_code)]"),
            });
        }
        if krate == "tensor" && !has("#![deny(unsafe_op_in_unsafe_fn)]") {
            findings.push(Finding {
                path: file.path.clone(),
                line: 1,
                rule: RULE,
                message: "ham-tensor must declare #![deny(unsafe_op_in_unsafe_fn)]".to_string(),
            });
        }
    }
}

/// `Some(crate_dir)` when `path` is `.../crates/<crate_dir>/src/lib.rs`.
fn lib_rs_crate(path: &str) -> Option<&str> {
    let (prefix, _) = path.split_once("/src/lib.rs").or_else(|| path.split_once("src/lib.rs"))?;
    let krate = prefix.rsplit('/').next().unwrap_or(prefix);
    if krate.is_empty() {
        None
    } else {
        Some(krate)
    }
}
