//! Rule family 3: the hot-path allocation lint.
//!
//! "Allocation-free per request" has been a prose claim since the batch-of-1
//! GEMV path landed; this rule makes it a checked property. A function whose
//! preceding comment carries the hot-path marker (the exact comment is shown
//! in the fixtures; it starts `ham-lint:` and names this rule) is scanned
//! body-wide for allocating calls. The escape hatch is a per-line
//! `allow(alloc, reason)` annotation for allocations that are deliberate
//! (e.g. the returned ranking `Vec` of a scoring entry point).
//!
//! The marker is per-function and not transitive: callees a hot function
//! relies on must be marked themselves to be checked.

use super::{push, Finding};
use crate::scan::{brace_close, has_marker, justification, word_positions, SourceFile};

pub const RULE: &str = "hot-path-alloc";

/// The marker and escape-hatch comment prefixes (start-anchored by
/// [`has_marker`], so prose mentioning them — like this crate's docs —
/// does not trigger the rule).
pub const MARKER: &str = "ham-lint: hot-path";
pub const ALLOW: &str = "ham-lint: allow(alloc";

/// Substrings of the code channel that allocate. Literal contents are
/// blanked before matching, so strings never false-positive.
const ALLOC_PATTERNS: &[&str] = &[
    "Vec::new",
    "vec!",
    ".to_vec",
    ".clone()",
    "format!",
    "Box::new",
    ".collect",
    ".to_string",
    ".to_owned",
    "String::new",
    "String::from",
    "::with_capacity",
    "Arc::new",
    "Rc::new",
];

pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    for idx in 0..file.lines.len() {
        if !has_marker(&[file.lines[idx].comment.clone()], MARKER) {
            continue;
        }
        // The marked item: the first `fn` at or just below the marker
        // (attributes and doc lines may sit in between).
        let Some(fn_idx) =
            (idx..file.lines.len().min(idx + 8)).find(|&k| !word_positions(&file.lines[k].code, "fn").is_empty())
        else {
            push(findings, file, idx, RULE, "hot-path marker is not followed by a function".to_string());
            continue;
        };
        let Some(close) = brace_close(&file.lines, fn_idx) else {
            push(findings, file, fn_idx, RULE, "hot-path function has no body to scan".to_string());
            continue;
        };
        for body_idx in fn_idx..=close {
            let code = file.lines[body_idx].code.as_str();
            let hits: Vec<&str> = ALLOC_PATTERNS.iter().copied().filter(|p| code.contains(p)).collect();
            if hits.is_empty() {
                continue;
            }
            if has_marker(&justification(&file.lines, body_idx), ALLOW) {
                continue;
            }
            push(
                findings,
                file,
                body_idx,
                RULE,
                format!("allocation in a hot-path function ({}) without an allow(alloc) annotation", hits.join(", ")),
            );
        }
    }
}
