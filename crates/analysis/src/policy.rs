//! The checked-in atomic-ordering policy table.
//!
//! The ordering rule ([`crate::rules::atomics`]) accepts an `Ordering::*`
//! use in an audited module in exactly two ways: an `// ordering:` comment
//! at the use site, or a `(file, ordering)` entry here. The table is for
//! files where one argument covers *every* use — repeating the same comment
//! fourteen times next to fourteen `Relaxed` counter bumps would train
//! readers to skip ordering comments entirely. Site comments are for the
//! cases where the argument is local (a shutdown flag, a cancellation
//! token); those must stay next to the code they justify.
//!
//! Adding an entry is a reviewed change to this crate, which is the point:
//! relaxing the ordering discipline of a file leaves a diff here, not just
//! a missing comment.

/// One policy entry: every use of `ordering` in files whose workspace
/// relative path ends with `file_suffix` is pre-justified by `reason`.
#[derive(Debug, Clone, Copy)]
pub struct OrderingPolicy {
    pub file_suffix: &'static str,
    pub ordering: &'static str,
    pub reason: &'static str,
}

/// The policy table. Suffix-matched so the linter works from any checkout
/// root; orderings are the bare variant name (`Relaxed`, `SeqCst`, ...).
pub const ORDERING_POLICY: &[OrderingPolicy] = &[
    OrderingPolicy {
        file_suffix: "crates/telemetry/src/metrics.rs",
        ordering: "Relaxed",
        reason: "every atomic is an independent monotonic cell (counter, gauge, histogram shard); snapshots \
                 merge cells without inter-cell ordering requirements, so Relaxed is sufficient everywhere \
                 in this file",
    },
    OrderingPolicy {
        file_suffix: "crates/faults/src/lib.rs",
        ordering: "Relaxed",
        reason: "draw counters only need each fetch_add to be atomic; rule evaluation tolerates any \
                 interleaving of concurrent draws, and determinism in tests comes from single-threaded use",
    },
];

/// Looks up the policy entry covering (`path`, `ordering`), if any.
pub fn lookup(path: &str, ordering: &str) -> Option<&'static OrderingPolicy> {
    ORDERING_POLICY.iter().find(|p| path.ends_with(p.file_suffix) && p.ordering == ordering)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_covers_telemetry_relaxed_but_not_seqcst() {
        assert!(lookup("crates/telemetry/src/metrics.rs", "Relaxed").is_some());
        assert!(lookup("crates/telemetry/src/metrics.rs", "SeqCst").is_none());
        assert!(lookup("crates/serve/src/server.rs", "Relaxed").is_none());
    }
}
