//! Brace/attribute-aware scanning on top of the [`lexer`](crate::lexer).
//!
//! Rules need three structural facts the lexer alone does not give them:
//! which lines are inside a `#[cfg(test)]` item (unit tests are exempt from
//! the runtime-surface rules), where a function body ends (for the hot-path
//! allocation lint), and which comment block *justifies* a given line (for
//! `// SAFETY:`, `// ordering:` and `// ham-lint: allow(...)` lookups —
//! trailing comment plus the contiguous comment block above, skipping the
//! attribute lines that legally sit between a comment and its item).

use crate::lexer::{lex, Line};

/// A lexed source file plus the structural masks the rules share.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes (rules match on it).
    pub path: String,
    pub lines: Vec<Line>,
    /// `test_mask[i]` is true when line `i` belongs to a `#[cfg(test)]`
    /// item (the attribute line through the matching closing brace).
    pub test_mask: Vec<bool>,
}

impl SourceFile {
    pub fn parse(path: &str, source: &str) -> Self {
        let lines = lex(source);
        let test_mask = test_mask(&lines);
        Self { path: path.replace('\\', "/"), lines, test_mask }
    }
}

fn test_mask(lines: &[Line]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if lines[i].code.contains("#[cfg(test)]") || lines[i].code.contains("#[test]") {
            match brace_close(lines, i) {
                Some(close) => {
                    for m in &mut mask[i..=close] {
                        *m = true;
                    }
                    i = close + 1;
                }
                None => {
                    for m in &mut mask[i..] {
                        *m = true;
                    }
                    break;
                }
            }
        } else {
            i += 1;
        }
    }
    mask
}

/// Line index of the `}` matching the first `{` at or after line `start`.
/// Closing braces seen before the first opener are ignored, so this can be
/// called from an item's first line regardless of surrounding nesting.
pub fn brace_close(lines: &[Line], start: usize) -> Option<usize> {
    let mut depth = 0u32;
    let mut seen_open = false;
    for (idx, line) in lines.iter().enumerate().skip(start) {
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    seen_open = true;
                }
                '}' if seen_open => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return Some(idx);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// The comment lines that justify line `idx`: its own trailing comment plus
/// the contiguous comment block directly above. Attribute lines (`#[...]`)
/// between the comment and the item are skipped; a blank line or a line of
/// real code ends the block.
pub fn justification(lines: &[Line], idx: usize) -> Vec<String> {
    let mut just = Vec::new();
    if !lines[idx].comment.trim().is_empty() {
        just.push(lines[idx].comment.clone());
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let line = &lines[j];
        let code = line.code.trim();
        if code.is_empty() && !line.comment.trim().is_empty() {
            just.push(line.comment.clone());
        } else if code.starts_with("#[") || code.starts_with("#!") {
            continue;
        } else {
            break;
        }
    }
    just
}

/// True when any justification line, stripped of doc-comment leaders
/// (`/`, `!`, `*`) and whitespace, starts with `prefix`. Start-anchoring is
/// deliberate: prose that merely *mentions* a marker (like this crate's own
/// documentation) must not count as carrying it.
pub fn has_marker(just: &[String], prefix: &str) -> bool {
    just.iter().any(|c| c.trim_start_matches(['/', '!', '*', ' ', '\t']).starts_with(prefix))
}

/// Byte offsets of whole-word occurrences of `word` in `code`.
pub fn word_positions(code: &str, word: &str) -> Vec<usize> {
    let mut hits = Vec::new();
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let at = from + pos;
        let end = at + word.len();
        let left_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let right_ok = end == code.len() || !is_ident_byte(bytes[end]);
        if left_ok && right_ok {
            hits.push(at);
        }
        from = at + word.len();
    }
    hits
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "\
fn runtime() {
    x.unwrap();
}

#[cfg(test)]
mod tests {
    fn helper() {
        y.unwrap();
    }
}
";

    #[test]
    fn cfg_test_items_are_masked_to_their_closing_brace() {
        let file = SourceFile::parse("crates/x/src/lib.rs", SRC);
        assert!(!file.test_mask[1], "runtime body is not test code");
        assert!(file.test_mask[4], "the attribute line is masked");
        assert!(file.test_mask[7], "the test body is masked");
        assert!(file.test_mask[9], "the closing brace is masked");
    }

    #[test]
    fn justification_collects_trailing_and_block_above_through_attributes() {
        let src = "\
// SAFETY: the block above
// continues here
#[inline]
unsafe fn f() {} // trailing too
";
        let lines = lex(src);
        let just = justification(&lines, 3);
        assert!(has_marker(&just, "SAFETY:"));
        assert!(just.iter().any(|l| l.contains("trailing too")));
        assert!(just.iter().any(|l| l.contains("continues here")));
    }

    #[test]
    fn justification_stops_at_real_code_and_blank_lines() {
        let src = "\
// SAFETY: belongs to the line below
let a = 1;

unsafe { demo() }
";
        let lines = lex(src);
        assert!(!has_marker(&justification(&lines, 3), "SAFETY:"));
    }

    #[test]
    fn markers_are_start_anchored() {
        let just = vec![" this prose mentions ham-lint: hot-path mid-sentence".to_string()];
        assert!(!has_marker(&just, "ham-lint: hot-path"));
        assert!(has_marker(&["ham-lint: hot-path".to_string()], "ham-lint: hot-path"));
        assert!(has_marker(&["/ # Safety".to_string()], "# Safety"));
    }

    #[test]
    fn word_positions_respect_identifier_boundaries() {
        assert_eq!(word_positions("unsafe fn f()", "unsafe").len(), 1);
        assert!(word_positions("not_unsafe_at_all()", "unsafe").is_empty());
        assert!(word_positions("unsafely()", "unsafe").is_empty());
    }
}
