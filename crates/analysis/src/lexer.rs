//! A hand-rolled line lexer for Rust source.
//!
//! The linter does not need a parse tree — every rule keys off tokens that
//! are unambiguous at the lexical level (`unsafe`, `Ordering::SeqCst`,
//! `.unwrap()`, attribute lines, marker comments). What it *does* need is to
//! never confuse the three token channels: real code, comment text, and
//! literal contents. A `".unwrap()"` inside a string must not trip the panic
//! lint, and a `SAFETY:` inside a string must not satisfy the unsafe audit.
//!
//! [`lex`] therefore splits each physical line into:
//!
//! - `code` — the line with comments removed and the *contents* of string,
//!   raw-string, char, and byte literals blanked to spaces (the delimiting
//!   quotes are kept so token shapes survive);
//! - `comment` — the text of any `//`/`///`/`//!` or `/* ... */` comment on
//!   the line, with the leading `//` stripped;
//! - `raw` — the untouched source line, for rules that must read literal
//!   contents (e.g. the `enable = "..."` string of `#[target_feature]`).
//!
//! State (block-comment nesting, multi-line strings, raw-string hash counts)
//! carries across lines, so block comments and multi-line literals are
//! handled correctly. Lifetimes (`'a`) are distinguished from char literals
//! (`'a'`) by a one-token lookahead.

/// One physical source line, split into token channels.
#[derive(Debug, Clone)]
pub struct Line {
    /// The untouched source line.
    pub raw: String,
    /// Code with comments removed and literal contents blanked.
    pub code: String,
    /// Comment text on this line (leading `//` stripped; block-comment
    /// bodies appear verbatim).
    pub comment: String,
}

/// Lexer state carried across physical lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    /// Inside a (possibly nested) `/* ... */`; the payload is the depth.
    Block(u32),
    /// Inside a normal `"..."` string.
    Str,
    /// Inside a raw string `r##"..."##`; the payload is the hash count.
    RawStr(u32),
}

/// Splits `source` into per-line token channels. Never fails: malformed
/// input degrades to "everything is code", which at worst produces an extra
/// finding for a human to look at rather than silently suppressing one.
pub fn lex(source: &str) -> Vec<Line> {
    let mut state = State::Code;
    let mut out = Vec::new();
    for raw in source.lines() {
        let chars: Vec<char> = raw.chars().collect();
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            match state {
                State::Block(depth) => {
                    if c == '/' && chars.get(i + 1) == Some(&'*') {
                        state = State::Block(depth + 1);
                        comment.push_str("/*");
                        i += 2;
                    } else if c == '*' && chars.get(i + 1) == Some(&'/') {
                        i += 2;
                        if depth == 1 {
                            state = State::Code;
                            code.push(' ');
                        } else {
                            state = State::Block(depth - 1);
                            comment.push_str("*/");
                        }
                    } else {
                        comment.push(c);
                        i += 1;
                    }
                }
                State::Str => {
                    if c == '\\' {
                        code.push_str("  ");
                        i += 2;
                    } else if c == '"' {
                        code.push('"');
                        state = State::Code;
                        i += 1;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                State::RawStr(hashes) => {
                    let h = hashes as usize;
                    if c == '"' && (1..=h).all(|k| chars.get(i + k) == Some(&'#')) {
                        code.push('"');
                        code.push_str(&" ".repeat(h));
                        state = State::Code;
                        i += 1 + h;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                State::Code => {
                    if c == '/' && chars.get(i + 1) == Some(&'/') {
                        comment.push_str(&chars[i + 2..].iter().collect::<String>());
                        i = chars.len();
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        state = State::Block(1);
                        code.push(' ');
                        i += 2;
                    } else if c == '"' {
                        code.push('"');
                        state = if let Some(h) = raw_string_hashes(&code) { State::RawStr(h) } else { State::Str };
                        i += 1;
                    } else if c == '\'' {
                        i = lex_quote(&chars, i, &mut code);
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }
        out.push(Line { raw: raw.to_string(), code, comment });
    }
    out
}

/// Called with `code` ending in the just-pushed `"`. Returns `Some(hashes)`
/// when the characters before it spell a raw-string opener (`r"`, `br#"`,
/// ...), i.e. zero or more `#` preceded by `r`/`br` that is not the tail of
/// an identifier.
fn raw_string_hashes(code: &str) -> Option<u32> {
    let before: Vec<char> = code[..code.len() - 1].chars().collect();
    let mut j = before.len();
    let mut hashes = 0u32;
    while j > 0 && before[j - 1] == '#' {
        hashes += 1;
        j -= 1;
    }
    if j == 0 || before[j - 1] != 'r' {
        return None;
    }
    j -= 1;
    if j > 0 && before[j - 1] == 'b' {
        j -= 1;
    }
    let prev_is_ident = j > 0 && (before[j - 1].is_alphanumeric() || before[j - 1] == '_');
    if prev_is_ident {
        None
    } else {
        Some(hashes)
    }
}

/// Handles a `'` in code position: either a char/byte literal (contents
/// blanked) or a lifetime (kept as-is). Returns the index to resume at.
fn lex_quote(chars: &[char], i: usize, code: &mut String) -> usize {
    if chars.get(i + 1) == Some(&'\\') {
        // Escaped char literal: '\n', '\'', '\u{1F600}', ...
        code.push('\'');
        code.push_str("  ");
        let mut j = i + 3; // skip the backslash and the char after it
        while j < chars.len() && chars[j] != '\'' {
            code.push(' ');
            j += 1;
        }
        if j < chars.len() {
            code.push('\'');
            j += 1;
        }
        j
    } else if i + 2 < chars.len() && chars[i + 2] == '\'' && chars[i + 1] != '\'' {
        // Single-char literal: 'a', ' ', '{'.
        code.push_str("' '");
        i + 3
    } else {
        // Lifetime ('a, 'static) or stray quote: leave as code.
        code.push('\'');
        i + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_go_to_the_comment_channel() {
        let lines = lex("let x = 1; // SAFETY: not really code\n");
        assert!(!lines[0].code.contains("SAFETY"));
        assert!(lines[0].comment.contains("SAFETY: not really code"));
        assert!(lines[0].code.contains("let x = 1;"));
    }

    #[test]
    fn string_contents_are_blanked_but_quotes_survive() {
        let lines = lex(r#"let s = "call .unwrap() // not a comment";"#);
        assert!(!lines[0].code.contains(".unwrap()"));
        assert!(lines[0].comment.is_empty());
        assert_eq!(lines[0].code.matches('"').count(), 2);
    }

    #[test]
    fn raw_strings_hide_their_contents_including_quotes() {
        let lines = lex("let s = r#\"has \"inner\" quotes and unsafe\"#; unsafe {}");
        assert!(!lines[0].code.contains("inner"));
        // The trailing real code is still visible.
        assert!(lines[0].code.contains("unsafe {}"));
        assert_eq!(lines[0].code.matches("unsafe").count(), 1);
    }

    #[test]
    fn block_comments_span_lines_and_nest() {
        let lines = lex("a /* one\n /* two */ still comment\nend */ b");
        assert!(lines[0].code.contains('a'));
        assert!(!lines[1].code.contains("still"));
        assert!(lines[1].comment.contains("still comment"));
        assert!(lines[2].code.contains('b'));
        assert!(!lines[2].code.contains("end"));
    }

    #[test]
    fn lifetimes_are_code_char_literals_are_blanked() {
        let lines = lex("fn f<'a>(x: &'a str, c: char) -> bool { c == 'x' && x.len() > 1 }");
        assert!(lines[0].code.contains("'a"));
        assert!(!lines[0].code.contains("'x'"));
        assert!(lines[0].code.contains("' '"));
    }

    #[test]
    fn escaped_char_literals_do_not_open_strings() {
        let lines = lex(r#"let q = '\''; let s = "text";"#);
        assert!(!lines[0].code.contains("text"));
        assert_eq!(lines[0].code.matches('"').count(), 2);
    }

    #[test]
    fn multi_line_strings_stay_blanked() {
        let lines = lex("let s = \"first\nsecond .unwrap()\";\nlet y = 2;");
        assert!(!lines[1].code.contains("unwrap"));
        assert!(lines[2].code.contains("let y = 2;"));
    }
}
