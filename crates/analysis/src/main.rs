//! `ham-lint`: walk `crates/*/src`, run every rule, exit nonzero on
//! findings.
//!
//! Usage: `ham-lint [workspace-root]` (default `.`). CI runs it as the
//! `static-analysis` job; locally, `cargo run -p ham-analysis --bin
//! ham-lint` from the workspace root does the same thing.

#![forbid(unsafe_code)]

use ham_analysis::scan::SourceFile;
use std::path::{Path, PathBuf};

fn main() {
    let root = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let root = PathBuf::from(root);
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        eprintln!("ham-lint: no crates/ directory under {} — run from the workspace root", root.display());
        std::process::exit(2);
    }

    let mut sources = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = match std::fs::read_dir(&crates_dir) {
        Ok(entries) => entries.filter_map(|e| e.ok().map(|e| e.path())).filter(|p| p.is_dir()).collect(),
        Err(err) => {
            eprintln!("ham-lint: cannot read {}: {err}", crates_dir.display());
            std::process::exit(2);
        }
    };
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut sources);
        }
    }

    let mut files = Vec::new();
    for path in &sources {
        let rel = path.strip_prefix(&root).unwrap_or(path);
        match std::fs::read_to_string(path) {
            Ok(text) => files.push(SourceFile::parse(&rel.to_string_lossy(), &text)),
            Err(err) => {
                eprintln!("ham-lint: cannot read {}: {err}", path.display());
                std::process::exit(2);
            }
        }
    }

    let findings = ham_analysis::lint_workspace_files(&files);
    for finding in &findings {
        println!("{finding}");
    }
    if findings.is_empty() {
        println!("ham-lint: {} files clean", files.len());
    } else {
        println!("ham-lint: {} finding(s) across {} files", findings.len(), files.len());
        std::process::exit(1);
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
