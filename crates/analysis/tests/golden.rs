//! Golden tests: each rule family against known-bad, known-good, and
//! escape-hatch fixtures. The fixtures live under `tests/fixtures/` as real
//! source files (never compiled — cargo only builds top-level `tests/*.rs`),
//! and are linted under *logical* workspace paths, because several rules
//! scope themselves by path (audited modules, tier-module placement, the
//! serve/online panic surface).

use ham_analysis::rules::{atomics, crate_attrs, hotpath, panics, unsafe_audit};
use ham_analysis::scan::SourceFile;
use ham_analysis::{lint_source, lint_workspace_files, Finding};

fn rules_hit(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

// --- rule family 1: unsafe-audit ------------------------------------------

#[test]
fn unsafe_without_safety_comment_is_flagged() {
    let findings = lint_source("crates/tensor/src/pool/scope.rs", include_str!("fixtures/unsafe_bad.rs"));
    assert_eq!(rules_hit(&findings), vec![unsafe_audit::RULE]);
    assert_eq!(findings[0].line, 2, "the finding points at the unsafe block");
}

#[test]
fn safety_comments_and_doc_safety_sections_satisfy_the_audit() {
    let findings = lint_source("crates/tensor/src/pool/scope.rs", include_str!("fixtures/unsafe_good.rs"));
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

#[test]
fn target_feature_fn_must_live_in_its_tier_module() {
    let src = include_str!("fixtures/target_feature_avx2.rs");
    let misplaced = lint_source("crates/tensor/src/kernels/portable.rs", src);
    assert_eq!(rules_hit(&misplaced), vec![unsafe_audit::RULE]);
    assert!(misplaced[0].message.contains("avx2.rs"), "names the owning module: {misplaced:?}");
    let in_place = lint_source("crates/tensor/src/kernels/avx2.rs", src);
    assert!(in_place.is_empty(), "unexpected: {in_place:?}");
}

#[test]
fn target_feature_fn_must_not_be_crate_public() {
    let findings =
        lint_source("crates/tensor/src/kernels/avx512.rs", include_str!("fixtures/target_feature_public.rs"));
    assert_eq!(rules_hit(&findings), vec![unsafe_audit::RULE]);
    assert!(findings[0].message.contains("dispatcher"), "explains the reachability rule: {findings:?}");
}

#[test]
fn tier_modules_must_stay_private_and_unreexported() {
    let findings = lint_source("crates/tensor/src/kernels/mod.rs", include_str!("fixtures/tier_reexport.rs"));
    assert_eq!(rules_hit(&findings), vec![unsafe_audit::RULE, unsafe_audit::RULE]);
    assert_eq!((findings[0].line, findings[1].line), (1, 5), "pub mod and pub use are both flagged");
}

// --- rule family 2: atomic-ordering ---------------------------------------

#[test]
fn bare_ordering_in_an_audited_module_is_flagged() {
    let src = include_str!("fixtures/atomic_bare.rs");
    let findings = lint_source("crates/serve/src/server.rs", src);
    assert_eq!(rules_hit(&findings), vec![atomics::RULE]);
    assert_eq!(findings[0].line, 4, "only the runtime SeqCst store — cmp::Ordering and test code are exempt");
}

#[test]
fn unaudited_modules_are_out_of_scope_for_the_ordering_rule() {
    let findings = lint_source("crates/core/src/lib.rs", include_str!("fixtures/atomic_bare.rs"));
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

#[test]
fn ordering_comments_satisfy_the_rule_trailing_or_above() {
    let findings = lint_source("crates/serve/src/server.rs", include_str!("fixtures/atomic_justified.rs"));
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

#[test]
fn the_policy_table_covers_blessed_orderings_only() {
    let findings = lint_source("crates/telemetry/src/metrics.rs", include_str!("fixtures/atomic_policy.rs"));
    assert_eq!(rules_hit(&findings), vec![atomics::RULE]);
    assert_eq!(findings[0].line, 8, "Relaxed is policy-blessed in telemetry; the SeqCst swap is not");
}

// --- rule family 3: hot-path-alloc ----------------------------------------

#[test]
fn marked_hot_path_functions_must_not_allocate() {
    let findings = lint_source("crates/serve/src/shard.rs", include_str!("fixtures/hotpath_alloc.rs"));
    assert_eq!(rules_hit(&findings), vec![hotpath::RULE]);
    assert!(findings[0].message.contains("Vec::new"), "names the allocating call: {findings:?}");
}

#[test]
fn unmarked_functions_may_allocate_and_clean_marked_ones_pass() {
    let findings = lint_source("crates/serve/src/shard.rs", include_str!("fixtures/hotpath_clean.rs"));
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

#[test]
fn allow_alloc_escapes_a_deliberate_allocation() {
    let findings = lint_source("crates/serve/src/shard.rs", include_str!("fixtures/hotpath_allowed.rs"));
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

// --- rule family 4: panic-surface -----------------------------------------

#[test]
fn unwrap_and_expect_in_serve_runtime_code_are_flagged() {
    let src = include_str!("fixtures/panic_bad.rs");
    let findings = lint_source("crates/serve/src/registry.rs", src);
    assert_eq!(rules_hit(&findings), vec![panics::RULE, panics::RULE]);
    assert_eq!((findings[0].line, findings[1].line), (4, 8));
}

#[test]
fn panic_rule_scopes_to_serve_and_online_only() {
    let findings = lint_source("crates/data/src/loader.rs", include_str!("fixtures/panic_bad.rs"));
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

#[test]
fn poison_recovery_allow_panic_and_tests_all_pass() {
    let findings = lint_source("crates/online/src/lib.rs", include_str!("fixtures/panic_allowed.rs"));
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

// --- rule family 5: crate-attrs (workspace-level) -------------------------

#[test]
fn unsafe_free_crates_must_forbid_unsafe_code() {
    let missing = SourceFile::parse("crates/serve/src/lib.rs", "//! Serving.\npub mod server;\n");
    let findings = lint_workspace_files(&[missing]);
    assert_eq!(rules_hit(&findings), vec![crate_attrs::RULE]);

    let present = SourceFile::parse("crates/serve/src/lib.rs", "//! Serving.\n#![forbid(unsafe_code)]\n");
    assert!(lint_workspace_files(&[present]).is_empty());
}

#[test]
fn ham_tensor_must_deny_unsafe_op_in_unsafe_fn() {
    let missing = SourceFile::parse("crates/tensor/src/lib.rs", "//! Tensors.\n");
    let findings = lint_workspace_files(&[missing]);
    assert_eq!(rules_hit(&findings), vec![crate_attrs::RULE]);
    assert!(findings[0].message.contains("unsafe_op_in_unsafe_fn"));

    let present = SourceFile::parse("crates/tensor/src/lib.rs", "#![deny(unsafe_op_in_unsafe_fn)]\n");
    assert!(lint_workspace_files(&[present]).is_empty());
}

#[test]
fn non_lib_files_are_exempt_from_crate_attrs() {
    let module = SourceFile::parse("crates/serve/src/server.rs", "pub fn run() {}\n");
    assert!(lint_workspace_files(&[module]).is_empty());
}
