//! The self-hosting test: the real workspace must lint clean. This is the
//! same walk the `ham-lint` binary performs, run in-process so `cargo test`
//! catches a regression even where CI's `static-analysis` job is skipped.

use std::fs;
use std::path::{Path, PathBuf};

use ham_analysis::lint_workspace_files;
use ham_analysis::scan::SourceFile;

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let mut entries: Vec<_> = fs::read_dir(dir).expect("readable source dir").map(|e| e.expect("dir entry")).collect();
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn the_workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("workspace root");
    let mut paths = Vec::new();
    let mut crates: Vec<_> =
        fs::read_dir(root.join("crates")).expect("crates/ dir").map(|e| e.expect("dir entry").path()).collect();
    crates.sort();
    for krate in crates {
        let src = krate.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut paths);
        }
    }
    assert!(paths.len() >= 100, "the walk found only {} files — wrong root?", paths.len());

    let files: Vec<SourceFile> = paths
        .iter()
        .map(|p| {
            let logical = p.strip_prefix(&root).expect("under root").to_string_lossy().replace('\\', "/");
            SourceFile::parse(&logical, &fs::read_to_string(p).expect("readable source file"))
        })
        .collect();
    let findings = lint_workspace_files(&files);
    let rendered: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
    assert!(findings.is_empty(), "the workspace must lint clean:\n{}", rendered.join("\n"));
}
