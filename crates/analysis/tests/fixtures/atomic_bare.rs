use std::sync::atomic::{AtomicBool, Ordering};

pub fn request_shutdown(flag: &AtomicBool) {
    flag.store(true, Ordering::SeqCst);
}

pub fn is_less(a: i32, b: i32) -> bool {
    a.cmp(&b) == std::cmp::Ordering::Less
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_use_bare_orderings() {
        let flag = AtomicBool::new(false);
        flag.store(true, Ordering::SeqCst);
        assert!(flag.load(Ordering::SeqCst));
    }
}
