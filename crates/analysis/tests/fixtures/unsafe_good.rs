pub fn read_first(xs: &[f32]) -> f32 {
    assert!(!xs.is_empty(), "read_first: empty slice");
    // SAFETY: the assert above guarantees index 0 is in bounds.
    unsafe { *xs.get_unchecked(0) }
}

/// Reads without the bounds check.
///
/// # Safety
/// `xs` must be non-empty.
unsafe fn read_first_unchecked(xs: &[f32]) -> f32 {
    // SAFETY: the caller upholds non-emptiness (see `# Safety` above).
    unsafe { *xs.get_unchecked(0) }
}
