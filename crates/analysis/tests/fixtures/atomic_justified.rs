use std::sync::atomic::{AtomicBool, Ordering};

pub fn request_shutdown(flag: &AtomicBool) {
    // ordering: SeqCst — pairs with the dispatcher's exit check; the store
    // must be visible before the wake-up notification.
    flag.store(true, Ordering::SeqCst);
}

pub fn should_exit(flag: &AtomicBool) -> bool {
    flag.load(Ordering::SeqCst) // ordering: SeqCst, pairs with the store above.
}
