pub fn read_first(xs: &[f32]) -> f32 {
    unsafe { *xs.get_unchecked(0) }
}
