use std::sync::{Mutex, PoisonError};

pub fn current(slot: &Mutex<u64>) -> u64 {
    *slot.lock().unwrap_or_else(PoisonError::into_inner)
}

pub fn spawn_dispatcher() -> std::thread::JoinHandle<()> {
    // ham-lint: allow(panic, "startup, before any traffic is accepted")
    std::thread::Builder::new().spawn(|| {}).expect("dispatcher thread")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Result<u64, ()> = Ok(1);
        assert_eq!(v.unwrap(), 1);
    }
}
