use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

pub fn drain(counter: &AtomicU64) -> u64 {
    counter.swap(0, Ordering::SeqCst)
}
