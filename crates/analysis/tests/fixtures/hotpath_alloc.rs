// ham-lint: hot-path
pub fn score(xs: &[f32]) -> Vec<f32> {
    let mut out = Vec::new();
    for x in xs {
        out.push(x * 2.0);
    }
    out
}
