pub mod avx2;
mod avx512;
mod portable;

pub use avx2::dot;
