// ham-lint: hot-path
pub fn ranked(xs: &[f32]) -> usize {
    let idx: Vec<usize> = (0..xs.len()).collect(); // ham-lint: allow(alloc, "the ranking is the response payload")
    idx.len()
}
