// SAFETY: detection-guarded — only the dispatcher calls in, after
// `is_x86_feature_detected!` confirmed avx2+fma.
#[target_feature(enable = "avx2,fma")]
unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}
