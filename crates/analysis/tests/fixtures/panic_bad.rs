use std::sync::Mutex;

pub fn current(slot: &Mutex<u64>) -> u64 {
    *slot.lock().unwrap()
}

pub fn named(slot: &Mutex<u64>) -> u64 {
    *slot.lock().expect("registry poisoned")
}
