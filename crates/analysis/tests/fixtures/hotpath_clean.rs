// ham-lint: hot-path
#[inline]
pub fn score_into(xs: &[f32], out: &mut [f32]) {
    for (o, x) in out.iter_mut().zip(xs) {
        *o = x * 2.0;
    }
}

pub fn unmarked_may_allocate(n: usize) -> Vec<f32> {
    let mut out = Vec::new();
    out.resize(n, 0.0);
    out
}
