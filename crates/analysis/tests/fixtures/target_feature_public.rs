// SAFETY: detection-guarded by the dispatcher.
#[target_feature(enable = "avx512f,avx512bw")]
pub unsafe fn hsum16(a: &[f32]) -> f32 {
    a.iter().sum()
}
