//! Concurrency and serde coverage for the metrics core: the properties the
//! serving/training hot paths rely on (no lost samples under contention,
//! snapshots that depend only on the recorded multiset) pinned under real
//! threads and under the workspace's work-stealing pool.

use ham_telemetry::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
use proptest::prelude::*;

/// Records `values` into a fresh histogram, split across `threads` OS
/// threads (round-robin by index), and returns the quiesced snapshot.
fn record_across_threads(values: &[u64], threads: usize) -> HistogramSnapshot {
    let h = Histogram::new();
    std::thread::scope(|s| {
        for t in 0..threads {
            let h = h.clone();
            let slice: Vec<u64> = values.iter().copied().skip(t).step_by(threads).collect();
            s.spawn(move || {
                for v in slice {
                    h.record(v);
                }
            });
        }
    });
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The merged snapshot is a pure function of the recorded multiset:
    /// recording the same values single-threaded, across 2 threads and
    /// across 7 (non-power-of-two, exercising shard sharing) threads gives
    /// identical snapshots, and count/sum/max match what the values say.
    #[test]
    fn concurrent_recording_merges_deterministically(
        values in proptest::collection::vec(0u64..1_000_000, 1..400),
    ) {
        let single = record_across_threads(&values, 1);
        let two = record_across_threads(&values, 2);
        let seven = record_across_threads(&values, 7);
        prop_assert_eq!(&single, &two);
        prop_assert_eq!(&single, &seven);
        prop_assert_eq!(single.count, values.len() as u64);
        prop_assert_eq!(single.sum, values.iter().sum::<u64>());
        prop_assert_eq!(single.max, values.iter().copied().max().unwrap_or(0));
    }

    /// Quantiles never exceed the observed max and never go below the
    /// sample minimum's bucket lower edge; merge() of a split equals
    /// recording everything at once.
    #[test]
    fn quantiles_and_window_merge_agree(
        a in proptest::collection::vec(0u64..100_000, 1..120),
        b in proptest::collection::vec(0u64..100_000, 1..120),
    ) {
        let left = record_across_threads(&a, 3);
        let right = record_across_threads(&b, 3);
        let merged = left.merge(&right);
        let mut all = a.clone();
        all.extend_from_slice(&b);
        let whole = record_across_threads(&all, 4);
        prop_assert_eq!(&merged, &whole);
        for pm in [500u64, 990, 999, 1000] {
            prop_assert!(merged.quantile_per_mille(pm) <= merged.max);
        }
    }
}

#[test]
fn counter_and_gauge_are_atomic_under_the_work_stealing_pool() {
    let pool = ham_tensor::pool::global_pool();
    let counter = Counter::new();
    let gauge = Gauge::new();
    const TASKS: usize = 64;
    const PER_TASK: u64 = 1_000;
    pool.scope(|scope| {
        for _ in 0..TASKS {
            let counter = counter.clone();
            let gauge = gauge.clone();
            scope.spawn(move || {
                for _ in 0..PER_TASK {
                    counter.inc();
                    gauge.add(3);
                    gauge.add(-1);
                }
            });
        }
    });
    assert_eq!(counter.get(), TASKS as u64 * PER_TASK, "no increments lost");
    assert_eq!(gauge.get(), (TASKS as u64 * PER_TASK * 2) as i64, "paired adds balance exactly");
}

#[test]
fn histogram_loses_no_samples_under_the_work_stealing_pool() {
    let pool = ham_tensor::pool::global_pool();
    let h = Histogram::new();
    const TASKS: u64 = 48;
    const PER_TASK: u64 = 500;
    pool.scope(|scope| {
        for t in 0..TASKS {
            let h = h.clone();
            scope.spawn(move || {
                for i in 0..PER_TASK {
                    h.record(t * PER_TASK + i);
                }
            });
        }
    });
    let snap = h.snapshot();
    let n = TASKS * PER_TASK;
    assert_eq!(snap.count, n);
    assert_eq!(snap.sum, n * (n - 1) / 2, "sum of 0..n intact");
    assert_eq!(snap.max, n - 1);
}

#[test]
fn full_snapshot_serde_round_trip() {
    let registry = MetricsRegistry::new();
    registry.counter("serve_requests_admitted_total").add(120);
    registry.counter("serve_requests_shed_total").add(8);
    registry.gauge("serve_queue_depth").set(5);
    registry.gauge("online_serving_staleness_seconds").set(2);
    let h = registry.histogram("serve_total_micros");
    for v in [90u64, 110, 240, 900, 12_000] {
        h.record(v);
    }
    let mut snap = registry.snapshot();
    snap.push_counter("kernel_avx512_calls_total", 31);
    let json = serde_json::to_string(&snap).expect("serialize");
    let back: MetricsSnapshot = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(snap, back);
    assert_eq!(back.counter("kernel_avx512_calls_total"), Some(31));
    assert_eq!(back.histogram("serve_total_micros").unwrap().count, 5);
}
