//! The lock-free metric primitives: counters, gauges and sharded
//! log2-bucketed histograms.
//!
//! Every record path is wait-free — a relaxed atomic RMW, nothing else. The
//! histogram additionally shards its buckets per recording thread (threads
//! are assigned round-robin to a small set of cache-line-padded shards on
//! first record), so concurrent recorders on the serving and training hot
//! paths never contend on one cache line. Reads merge the shards by plain
//! `u64` addition, which is commutative and associative — a quiesced
//! histogram's snapshot is a pure function of the recorded multiset of
//! values, independent of which thread recorded what (pinned by the
//! determinism proptest in `tests/metrics_core.rs`).

use serde::{field, DeError, Deserialize, Serialize, Value};
use std::cell::Cell;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A monotonically increasing event count (wait-free, relaxed atomics).
///
/// Clones share the underlying cell, so a component can hold the handle it
/// resolved at construction while the registry serves snapshots of the same
/// value.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A point-in-time signed value — queue depths, staleness seconds
/// (wait-free, relaxed atomics). Clones share the cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the value.
    #[inline]
    pub fn set(&self, value: i64) {
        self.cell.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.cell.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Buckets per histogram: bucket 0 holds exact zeros, bucket `b ≥ 1` holds
/// values in `[2^(b-1), 2^b)`. 64 buckets cover the full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Recording shards per histogram (power of two; threads are assigned
/// round-robin). Eight shards bound the worst case on this workspace's
/// pool sizes while keeping snapshots an 8×64 add.
const SHARDS: usize = 8;

/// One thread-sharded slice of a histogram's state, padded to its own cache
/// lines so recorders on different shards never false-share.
#[repr(align(128))]
struct HistogramShard {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramShard {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Round-robin assignment of recording threads to histogram shards: the
/// first record from a thread draws the process-wide next index. One index
/// serves every histogram — the point is spreading *threads*, not values.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

#[inline]
fn thread_shard() -> usize {
    THREAD_SHARD.with(|slot| {
        let cached = slot.get();
        if cached != usize::MAX {
            return cached;
        }
        let assigned = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) & (SHARDS - 1);
        slot.set(assigned);
        assigned
    })
}

/// The log2 bucket of a value: 0 for 0, otherwise `64 − leading_zeros`, so
/// bucket `b` spans `[2^(b-1), 2^b)` and the top bucket absorbs everything
/// from `2^62` up.
#[inline]
fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The inclusive upper edge of a bucket (`u64::MAX` for the top bucket,
/// which also catches values whose log2 bucket would exceed the array).
fn bucket_upper_edge(bucket: usize) -> u64 {
    if bucket >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

/// A lock-free log2-bucketed histogram of `u64` samples (latencies in
/// micro/nanoseconds, batch sizes, row counts).
///
/// Recording is a handful of relaxed `fetch_add`s into the recording
/// thread's shard; reading merges the shards deterministically (see the
/// module docs). Quantiles come from the bucket edges, so they are exact to
/// within one power of two and clamped to the observed maximum.
#[derive(Clone)]
pub struct Histogram {
    shards: Arc<[HistogramShard]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self { shards: (0..SHARDS).map(|_| HistogramShard::new()).collect() }
    }

    /// Records one sample (wait-free).
    #[inline]
    // ham-lint: hot-path
    pub fn record(&self, value: u64) {
        let shard = &self.shards[thread_shard()];
        shard.buckets[bucket_of(value).min(HISTOGRAM_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        shard.count.fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(value, Ordering::Relaxed);
        shard.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Merges the shards into an owned snapshot. Concurrent records may or
    /// may not be included (each whole sample eventually is); once recorders
    /// quiesce, the snapshot depends only on the recorded values.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
        let mut count = 0u64;
        let mut sum = 0u64;
        let mut max = 0u64;
        for shard in self.shards.iter() {
            for (merged, bucket) in buckets.iter_mut().zip(&shard.buckets) {
                *merged += bucket.load(Ordering::Relaxed);
            }
            count += shard.count.load(Ordering::Relaxed);
            sum += shard.sum.load(Ordering::Relaxed);
            max = max.max(shard.max.load(Ordering::Relaxed));
        }
        HistogramSnapshot { count, sum, max, buckets }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram").field("count", &snap.count).field("sum", &snap.sum).field("max", &snap.max).finish()
    }
}

/// An owned, merged view of a [`Histogram`] at one point in time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (wraps only past `u64::MAX` total).
    pub sum: u64,
    /// Largest sample recorded.
    pub max: u64,
    /// Per-bucket counts; bucket 0 is exact zeros, bucket `b` spans
    /// `[2^(b-1), 2^b)`.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile at `per_mille`/1000 (e.g. 500 = p50,
    /// 999 = p99.9), resolved to the containing bucket's inclusive upper
    /// edge and clamped to the observed maximum. Zero when empty.
    ///
    /// Uses the same exact integer rank math as `LatencyStats`:
    /// rank = `⌈count · per_mille / 1000⌉`.
    pub fn quantile_per_mille(&self, per_mille: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (self.count * per_mille.min(1000)).div_ceil(1000).max(1);
        let mut seen = 0u64;
        for (bucket, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_edge(bucket).min(self.max);
            }
        }
        self.max
    }

    /// Median (bucket-resolution, see [`Self::quantile_per_mille`]).
    pub fn p50(&self) -> u64 {
        self.quantile_per_mille(500)
    }

    /// 99th percentile (bucket-resolution).
    pub fn p99(&self) -> u64 {
        self.quantile_per_mille(990)
    }

    /// 99.9th percentile (bucket-resolution).
    pub fn p999(&self) -> u64 {
        self.quantile_per_mille(999)
    }

    /// Combines two measurement windows (counts and buckets add, maxima
    /// take the larger).
    pub fn merge(&self, other: &Self) -> Self {
        let mut buckets = self.buckets.clone();
        buckets.resize(buckets.len().max(other.buckets.len()), 0);
        for (merged, &n) in buckets.iter_mut().zip(&other.buckets) {
            *merged += n;
        }
        Self { count: self.count + other.count, sum: self.sum + other.sum, max: self.max.max(other.max), buckets }
    }
}

impl Serialize for HistogramSnapshot {
    fn to_value(&self) -> Value {
        // Buckets are serialized sparsely as (bucket, count) pairs: almost
        // every histogram occupies a handful of its 64 buckets.
        let sparse: Vec<(u64, u64)> =
            self.buckets.iter().enumerate().filter(|(_, &n)| n > 0).map(|(b, &n)| (b as u64, n)).collect();
        Value::Object(vec![
            ("count".to_string(), self.count.to_value()),
            ("sum".to_string(), self.sum.to_value()),
            ("max".to_string(), self.max.to_value()),
            ("p50".to_string(), self.p50().to_value()),
            ("p99".to_string(), self.p99().to_value()),
            ("p999".to_string(), self.p999().to_value()),
            ("buckets".to_string(), sparse.to_value()),
        ])
    }
}

impl Deserialize for HistogramSnapshot {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v.as_object().ok_or_else(|| DeError::new("HistogramSnapshot: expected object"))?;
        let sparse: Vec<(u64, u64)> = field(obj, "buckets")?;
        let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
        for (bucket, n) in sparse {
            let bucket = bucket as usize;
            if bucket >= buckets.len() {
                return Err(DeError::new(format!("HistogramSnapshot: bucket {bucket} out of range")));
            }
            buckets[bucket] = n;
        }
        Ok(Self { count: field(obj, "count")?, sum: field(obj, "sum")?, max: field(obj, "max")?, buckets })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper_edge(0), 0);
        assert_eq!(bucket_upper_edge(1), 1);
        assert_eq!(bucket_upper_edge(2), 3);
        assert_eq!(bucket_upper_edge(10), 1023);
        assert_eq!(bucket_upper_edge(63), u64::MAX);
    }

    #[test]
    fn histogram_counts_sums_and_maxima() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 5, 700, 1_000_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 6);
        assert_eq!(snap.sum, 1_000_711);
        assert_eq!(snap.max, 1_000_000);
        assert_eq!(snap.buckets[0], 1, "exact zero lands in bucket 0");
        assert_eq!(snap.buckets[bucket_of(5)], 2);
    }

    #[test]
    fn quantiles_resolve_to_bucket_edges_clamped_to_max() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(100); // bucket [64, 128)
        }
        h.record(9_000); // bucket [8192, 16384)
        let snap = h.snapshot();
        assert_eq!(snap.p50(), 127, "p50 is the [64,128) bucket's upper edge");
        assert_eq!(snap.p99(), 127, "rank 99 still falls in the low bucket");
        assert_eq!(snap.p999(), 9_000, "the top sample clamps to the observed max");
        assert_eq!(snap.quantile_per_mille(1000), 9_000);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let snap = Histogram::new().snapshot();
        assert_eq!((snap.count, snap.sum, snap.max, snap.p50(), snap.p999()), (0, 0, 0, 0, 0));
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn snapshot_merge_adds_windows() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [1u64, 2, 3] {
            a.record(v);
        }
        for v in [10u64, 20] {
            b.record(v);
        }
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged.count, 5);
        assert_eq!(merged.sum, 36);
        assert_eq!(merged.max, 20);

        let all = Histogram::new();
        for v in [1u64, 2, 3, 10, 20] {
            all.record(v);
        }
        assert_eq!(merged, all.snapshot(), "merging windows equals recording everything into one");
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let shared = c.clone();
        shared.inc();
        assert_eq!(c.get(), 43, "clones share the cell");

        let g = Gauge::new();
        g.set(7);
        g.add(-10);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn histogram_snapshot_serde_round_trip() {
        let h = Histogram::new();
        for v in [0u64, 3, 3, 900, 1 << 40] {
            h.record(v);
        }
        let snap = h.snapshot();
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: HistogramSnapshot = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(snap, back);
    }
}
