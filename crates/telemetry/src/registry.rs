//! The metric registry and its serializable snapshot.
//!
//! Components resolve named metric handles once at construction
//! ([`MetricsRegistry::counter`] / [`gauge`](MetricsRegistry::gauge) /
//! [`histogram`](MetricsRegistry::histogram) get-or-create under a mutex —
//! registration is cold); every subsequent record goes straight to the
//! lock-free primitive. [`MetricsRegistry::snapshot`] freezes every metric
//! into a [`MetricsSnapshot`], which serializes to JSON (one object), to
//! JSON-lines (one object per metric per line — the append-to-a-log shape)
//! and to a Prometheus-style text exposition.

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use serde::{field, DeError, Deserialize, Serialize, Value};
use std::sync::Mutex;

/// A named collection of counters, gauges and histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Vec<(String, Counter)>,
    gauges: Vec<(String, Gauge)>,
    histograms: Vec<(String, Histogram)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, creating it at zero on first use. The
    /// returned handle shares state with every other handle of the same
    /// name — resolve once, record lock-free forever.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some((_, c)) = inner.counters.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let c = Counter::new();
        inner.counters.push((name.to_string(), c.clone()));
        c
    }

    /// The gauge named `name`, creating it at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some((_, g)) = inner.gauges.iter().find(|(n, _)| n == name) {
            return g.clone();
        }
        let g = Gauge::new();
        inner.gauges.push((name.to_string(), g.clone()));
        g
    }

    /// The histogram named `name`, creating it empty on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some((_, h)) = inner.histograms.iter().find(|(n, _)| n == name) {
            return h.clone();
        }
        let h = Histogram::new();
        inner.histograms.push((name.to_string(), h.clone()));
        h
    }

    /// Registers an externally owned counter under `name` (the serving
    /// layer's always-on stats counters join the registry this way). A
    /// same-named entry is replaced.
    pub fn register_counter(&self, name: &str, counter: &Counter) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.counters.retain(|(n, _)| n != name);
        inner.counters.push((name.to_string(), counter.clone()));
    }

    /// Registers an externally owned gauge under `name` (see
    /// [`Self::register_counter`]).
    pub fn register_gauge(&self, name: &str, gauge: &Gauge) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.gauges.retain(|(n, _)| n != name);
        inner.gauges.push((name.to_string(), gauge.clone()));
    }

    /// Freezes every registered metric into an owned snapshot, entries
    /// sorted by name so two snapshots of the same state are identical.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let mut snapshot = MetricsSnapshot {
            counters: inner.counters.iter().map(|(n, c)| CounterEntry { name: n.clone(), value: c.get() }).collect(),
            gauges: inner.gauges.iter().map(|(n, g)| GaugeEntry { name: n.clone(), value: g.get() }).collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(n, h)| HistogramEntry { name: n.clone(), data: h.snapshot() })
                .collect(),
        };
        snapshot.counters.sort_by(|a, b| a.name.cmp(&b.name));
        snapshot.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        snapshot.histograms.sort_by(|a, b| a.name.cmp(&b.name));
        snapshot
    }
}

/// One counter in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterEntry {
    /// Metric name.
    pub name: String,
    /// The frozen count.
    pub value: u64,
}

/// One gauge in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeEntry {
    /// Metric name.
    pub name: String,
    /// The frozen value.
    pub value: i64,
}

/// One histogram in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramEntry {
    /// Metric name.
    pub name: String,
    /// The merged histogram state.
    pub data: HistogramSnapshot,
}

/// A point-in-time, owned copy of every metric in a registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counters, sorted by name.
    pub counters: Vec<CounterEntry>,
    /// Gauges, sorted by name.
    pub gauges: Vec<GaugeEntry>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramEntry>,
}

impl MetricsSnapshot {
    /// The value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|e| e.name == name).map(|e| e.value)
    }

    /// The value of gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|e| e.name == name).map(|e| e.value)
    }

    /// The state of histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|e| e.name == name).map(|e| &e.data)
    }

    /// Appends (or replaces) a counter — how values owned outside any
    /// registry (the kernel layer's per-tier dispatch counters) join a
    /// snapshot before exposition.
    pub fn push_counter(&mut self, name: &str, value: u64) {
        self.counters.retain(|e| e.name != name);
        let at = self.counters.partition_point(|e| e.name.as_str() < name);
        self.counters.insert(at, CounterEntry { name: name.to_string(), value });
    }

    /// Appends (or replaces) a gauge (see [`Self::push_counter`]).
    pub fn push_gauge(&mut self, name: &str, value: i64) {
        self.gauges.retain(|e| e.name != name);
        let at = self.gauges.partition_point(|e| e.name.as_str() < name);
        self.gauges.insert(at, GaugeEntry { name: name.to_string(), value });
    }

    /// Serializes to JSON-lines: one self-describing object per metric per
    /// line (`{"type":"counter","name":…,"value":…}`), the shape an
    /// append-only metrics log ingests.
    pub fn to_json_lines(&self) -> String {
        // The vendored `Value` has no own `Serialize` impl; this wrapper
        // lets prebuilt values flow through `serde_json::to_string`.
        struct Raw(Value);
        impl Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let line = |kind: &str, name: &str, payload_key: &str, payload: Value| {
            let obj = Value::Object(vec![
                ("type".to_string(), kind.to_value()),
                ("name".to_string(), name.to_value()),
                (payload_key.to_string(), payload),
            ]);
            serde_json::to_string(&Raw(obj)).expect("metric line serializes")
        };
        let mut out = String::new();
        for e in &self.counters {
            out.push_str(&line("counter", &e.name, "value", e.value.to_value()));
            out.push('\n');
        }
        for e in &self.gauges {
            out.push_str(&line("gauge", &e.name, "value", e.value.to_value()));
            out.push('\n');
        }
        for e in &self.histograms {
            out.push_str(&line("histogram", &e.name, "data", e.data.to_value()));
            out.push('\n');
        }
        out
    }

    /// Serializes to a Prometheus-style text exposition: counters as
    /// `name value` with `# TYPE` headers, histograms as cumulative
    /// `name_bucket{le="…"}` series plus `name_sum` / `name_count`.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        for e in &self.counters {
            out.push_str(&format!("# TYPE {} counter\n{} {}\n", e.name, e.name, e.value));
        }
        for e in &self.gauges {
            out.push_str(&format!("# TYPE {} gauge\n{} {}\n", e.name, e.name, e.value));
        }
        for e in &self.histograms {
            out.push_str(&format!("# TYPE {} histogram\n", e.name));
            let mut cumulative = 0u64;
            for (bucket, &n) in e.data.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                cumulative += n;
                let le = if bucket >= e.data.buckets.len() - 1 {
                    "+Inf".to_string()
                } else if bucket == 0 {
                    "0".to_string()
                } else {
                    ((1u64 << bucket) - 1).to_string()
                };
                out.push_str(&format!("{}_bucket{{le=\"{}\"}} {}\n", e.name, le, cumulative));
            }
            out.push_str(&format!("{}_bucket{{le=\"+Inf\"}} {}\n", e.name, e.data.count));
            out.push_str(&format!("{}_sum {}\n", e.name, e.data.sum));
            out.push_str(&format!("{}_count {}\n", e.name, e.data.count));
        }
        out
    }
}

impl Serialize for MetricsSnapshot {
    fn to_value(&self) -> Value {
        let entry = |name: &str, value: Value| (name.to_string(), value);
        Value::Object(vec![
            entry(
                "counters",
                Value::Array(
                    self.counters
                        .iter()
                        .map(|e| {
                            Value::Object(vec![
                                ("name".to_string(), e.name.to_value()),
                                ("value".to_string(), e.value.to_value()),
                            ])
                        })
                        .collect(),
                ),
            ),
            entry(
                "gauges",
                Value::Array(
                    self.gauges
                        .iter()
                        .map(|e| {
                            Value::Object(vec![
                                ("name".to_string(), e.name.to_value()),
                                ("value".to_string(), e.value.to_value()),
                            ])
                        })
                        .collect(),
                ),
            ),
            entry(
                "histograms",
                Value::Array(
                    self.histograms
                        .iter()
                        .map(|e| {
                            Value::Object(vec![
                                ("name".to_string(), e.name.to_value()),
                                ("data".to_string(), e.data.to_value()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl Deserialize for MetricsSnapshot {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v.as_object().ok_or_else(|| DeError::new("MetricsSnapshot: expected object"))?;
        let entries = |key: &str| -> Result<Vec<Value>, DeError> {
            match obj.iter().find(|(k, _)| k == key) {
                Some((_, Value::Array(items))) => Ok(items.clone()),
                Some(_) => Err(DeError::new(format!("MetricsSnapshot: `{key}` must be an array"))),
                None => Err(DeError::new(format!("MetricsSnapshot: missing `{key}`"))),
            }
        };
        let mut counters = Vec::new();
        for item in entries("counters")? {
            let o = item.as_object().ok_or_else(|| DeError::new("counter entry: expected object"))?;
            counters.push(CounterEntry { name: field(o, "name")?, value: field(o, "value")? });
        }
        let mut gauges = Vec::new();
        for item in entries("gauges")? {
            let o = item.as_object().ok_or_else(|| DeError::new("gauge entry: expected object"))?;
            gauges.push(GaugeEntry { name: field(o, "name")?, value: field(o, "value")? });
        }
        let mut histograms = Vec::new();
        for item in entries("histograms")? {
            let o = item.as_object().ok_or_else(|| DeError::new("histogram entry: expected object"))?;
            histograms.push(HistogramEntry { name: field(o, "name")?, data: field(o, "data")? });
        }
        Ok(Self { counters, gauges, histograms })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_shared_handles() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("requests_total");
        let b = registry.counter("requests_total");
        a.inc();
        b.add(2);
        assert_eq!(registry.snapshot().counter("requests_total"), Some(3));
        assert_eq!(registry.snapshot().counters.len(), 1, "same name resolves to one metric");
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let registry = MetricsRegistry::new();
        registry.counter("zeta").add(1);
        registry.counter("alpha").add(2);
        registry.gauge("depth").set(-4);
        registry.histogram("latency").record(100);
        let snap = registry.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
        assert_eq!(snap.gauge("depth"), Some(-4));
        assert_eq!(snap.histogram("latency").unwrap().count, 1);
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn external_metrics_can_be_registered_and_pushed() {
        let registry = MetricsRegistry::new();
        let owned = Counter::new();
        owned.add(7);
        registry.register_counter("external_total", &owned);
        owned.inc();
        let mut snap = registry.snapshot();
        assert_eq!(snap.counter("external_total"), Some(8));
        snap.push_counter("kernel_portable_calls_total", 5);
        snap.push_counter("kernel_portable_calls_total", 6);
        assert_eq!(snap.counter("kernel_portable_calls_total"), Some(6), "push replaces");
        snap.push_gauge("staleness_seconds", 3);
        assert_eq!(snap.gauge("staleness_seconds"), Some(3));
        let sorted: Vec<&str> = snap.counters.iter().map(|e| e.name.as_str()).collect();
        let mut expect = sorted.clone();
        expect.sort_unstable();
        assert_eq!(sorted, expect, "push keeps the name order");
    }

    #[test]
    fn json_lines_has_one_line_per_metric() {
        let registry = MetricsRegistry::new();
        registry.counter("a").inc();
        registry.gauge("b").set(2);
        registry.histogram("c").record(3);
        let text = registry.snapshot().to_json_lines();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"counter\"") && lines[0].contains("\"a\""), "{}", lines[0]);
        assert!(lines[2].contains("\"histogram\""), "{}", lines[2]);
    }

    #[test]
    fn prometheus_text_emits_cumulative_buckets() {
        let registry = MetricsRegistry::new();
        registry.counter("served_total").add(3);
        let h = registry.histogram("latency_micros");
        h.record(5); // bucket le=7
        h.record(6); // bucket le=7
        h.record(100); // bucket le=127
        let text = registry.snapshot().to_prometheus_text();
        assert!(text.contains("# TYPE served_total counter"), "{text}");
        assert!(text.contains("served_total 3"), "{text}");
        assert!(text.contains("latency_micros_bucket{le=\"7\"} 2"), "{text}");
        assert!(text.contains("latency_micros_bucket{le=\"127\"} 3"), "{text}");
        assert!(text.contains("latency_micros_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("latency_micros_sum 111"), "{text}");
        assert!(text.contains("latency_micros_count 3"), "{text}");
    }

    #[test]
    fn metrics_snapshot_serde_round_trip() {
        let registry = MetricsRegistry::new();
        registry.counter("served_total").add(42);
        registry.gauge("queue_depth").set(-1);
        let h = registry.histogram("latency");
        for v in [1u64, 10, 100, 1000] {
            h.record(v);
        }
        let snap = registry.snapshot();
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(snap, back);
    }
}
