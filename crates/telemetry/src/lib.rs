//! `ham-telemetry` — lock-free metrics and request-span tracing for the HAM
//! serving system.
//!
//! The crate is std-only and splits into three layers:
//!
//! - [`metrics`]: wait-free [`Counter`]/[`Gauge`] cells and a thread-sharded
//!   log2-bucketed [`Histogram`] whose shards merge deterministically on
//!   read.
//! - [`registry`]: a named [`MetricsRegistry`] (get-or-create is the only
//!   locked path; recording never locks) and its serializable
//!   [`MetricsSnapshot`] with JSON, JSON-lines and Prometheus-style text
//!   expositions.
//! - [`span`]: plain-data [`SpanTree`]s for stage-level request timing and
//!   the [`FlightRecorder`] ring of the last N request trees.
//!
//! Components take a [`Telemetry`] handle. A disabled handle is a `None`
//! inside an `Option` — every instrumentation site degrades to one branch,
//! which is what keeps the serve-p50 overhead within the ≤2% budget pinned
//! by `BENCH_telemetry.json`.

#![forbid(unsafe_code)]

pub mod metrics;
pub mod registry;
pub mod span;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
pub use registry::{CounterEntry, GaugeEntry, HistogramEntry, MetricsRegistry, MetricsSnapshot};
pub use span::{FlightRecorder, SpanClock, SpanTree};

use std::sync::{Arc, OnceLock};

/// Flight-recorder capacity used by [`Telemetry::enabled`].
pub const DEFAULT_FLIGHT_CAPACITY: usize = 64;

#[derive(Debug)]
struct TelemetryInner {
    registry: MetricsRegistry,
    flight: FlightRecorder,
}

/// The cheap, cloneable handle instrumented components hold.
///
/// Enabled handles share one [`MetricsRegistry`] and one [`FlightRecorder`];
/// a disabled handle carries nothing and makes every instrumentation call a
/// single `Option` branch.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<TelemetryInner>>,
}

impl Telemetry {
    /// An enabled handle with the default flight-recorder capacity.
    pub fn enabled() -> Self {
        Self::with_flight_capacity(DEFAULT_FLIGHT_CAPACITY)
    }

    /// An enabled handle keeping the last `capacity` request span trees.
    pub fn with_flight_capacity(capacity: usize) -> Self {
        Self {
            inner: Some(Arc::new(TelemetryInner {
                registry: MetricsRegistry::new(),
                flight: FlightRecorder::new(capacity),
            })),
        }
    }

    /// The no-op handle: every instrumentation site short-circuits.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Enabled iff the environment sets `HAM_TELEMETRY=1` (or `true`/`on`),
    /// disabled otherwise — the zero-code way to light up an existing
    /// binary.
    pub fn from_env() -> Self {
        match std::env::var("HAM_TELEMETRY") {
            Ok(v) if matches!(v.as_str(), "1" | "true" | "on") => Self::enabled(),
            _ => Self::disabled(),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The shared registry (`None` when disabled).
    pub fn registry(&self) -> Option<&MetricsRegistry> {
        self.inner.as_deref().map(|i| &i.registry)
    }

    /// The shared flight recorder (`None` when disabled).
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.inner.as_deref().map(|i| &i.flight)
    }

    /// Snapshot of every metric (`None` when disabled).
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        self.registry().map(MetricsRegistry::snapshot)
    }
}

static GLOBAL: OnceLock<Telemetry> = OnceLock::new();

/// Installs the process-global handle used by call sites that cannot thread
/// a handle through their config types (the batched trainer's `Copy`
/// configs). First install wins; returns whether this call installed.
pub fn install_global(telemetry: Telemetry) -> bool {
    GLOBAL.set(telemetry).is_ok()
}

/// The process-global handle; disabled until [`install_global`] runs.
pub fn global() -> Telemetry {
    GLOBAL.get().cloned().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_carries_nothing() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        assert!(t.registry().is_none());
        assert!(t.flight().is_none());
        assert!(t.snapshot().is_none());
    }

    #[test]
    fn enabled_clones_share_state() {
        let t = Telemetry::with_flight_capacity(4);
        let other = t.clone();
        t.registry().unwrap().counter("shared_total").add(5);
        assert_eq!(other.snapshot().unwrap().counter("shared_total"), Some(5));
        other.flight().unwrap().record(SpanTree::leaf("request", 0, 10));
        assert_eq!(t.flight().unwrap().len(), 1);
    }

    #[test]
    fn global_defaults_to_disabled() {
        // install_global is covered end-to-end by the report bin; here we
        // only pin that an uninstalled global is a no-op handle.
        assert!(!global().is_enabled() || GLOBAL.get().is_some());
    }
}
