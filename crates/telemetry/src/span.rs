//! Stage-level span trees and the flight recorder.
//!
//! A [`SpanTree`] records where one request's time went: a named root with
//! nested child stages, each carrying a start offset (relative to the root)
//! and a duration in microseconds. The serving dispatcher builds one tree
//! per request — `request → {queue, service → {batch_assembly, shard_score →
//! {shard_i…}, merge, rerank}}` — and pushes it into the [`FlightRecorder`],
//! a fixed-capacity ring of the most recent trees, so the requests around a
//! tail-latency spike can be inspected *after the fact* without having
//! logged anything.
//!
//! Spans are deliberately plain data (built by whoever did the timing, no
//! thread-local ambient context): the serving loop already measures every
//! stage, so the tree just gives those measurements a shape that survives
//! serialization.

use serde::{field, DeError, Deserialize, Serialize, Value};
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// One named span with its children, start offset and duration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanTree {
    /// Stage name (`"request"`, `"queue"`, `"shard_score"`, `"shard_3"`, …).
    pub name: String,
    /// Microseconds from the *root* span's start to this span's start.
    pub start_micros: u64,
    /// The span's duration in microseconds.
    pub duration_micros: u64,
    /// Nested child stages, in start order.
    pub children: Vec<SpanTree>,
}

impl SpanTree {
    /// A leaf span.
    pub fn leaf(name: impl Into<String>, start_micros: u64, duration_micros: u64) -> Self {
        Self { name: name.into(), start_micros, duration_micros, children: Vec::new() }
    }

    /// Adds a child and returns `self` (builder-style).
    pub fn with_child(mut self, child: SpanTree) -> Self {
        self.children.push(child);
        self
    }

    /// Total spans in the tree (this node included).
    pub fn span_count(&self) -> usize {
        1 + self.children.iter().map(SpanTree::span_count).sum::<usize>()
    }

    /// Finds the first span with `name` in depth-first order.
    pub fn find(&self, name: &str) -> Option<&SpanTree> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Renders the tree as an indented ASCII outline — what an operator
    /// prints when reading the flight recorder:
    ///
    /// ```text
    /// request                 812µs
    ///   queue                 103µs
    ///   service               709µs  @103µs
    ///     batch_assembly       11µs  @103µs
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let indent = "  ".repeat(depth);
        out.push_str(&format!(
            "{indent}{:<w$} {:>6}µs",
            self.name,
            self.duration_micros,
            w = 24 - indent.len().min(20)
        ));
        if self.start_micros > 0 {
            out.push_str(&format!("  @{}µs", self.start_micros));
        }
        out.push('\n');
        for child in &self.children {
            child.render_into(out, depth + 1);
        }
    }
}

impl Serialize for SpanTree {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("name".to_string(), self.name.to_value()),
            ("start_micros".to_string(), self.start_micros.to_value()),
            ("duration_micros".to_string(), self.duration_micros.to_value()),
            ("children".to_string(), self.children.to_value()),
        ])
    }
}

impl Deserialize for SpanTree {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v.as_object().ok_or_else(|| DeError::new("SpanTree: expected object"))?;
        Ok(Self {
            name: field(obj, "name")?,
            start_micros: field(obj, "start_micros")?,
            duration_micros: field(obj, "duration_micros")?,
            children: field(obj, "children")?,
        })
    }
}

/// A stopwatch that yields `(start_offset, duration)` pairs relative to one
/// root instant — the builder-side helper for assembling [`SpanTree`]s from
/// the serving loop's existing `Instant` measurements.
#[derive(Debug, Clone, Copy)]
pub struct SpanClock {
    root: Instant,
}

impl SpanClock {
    /// A clock whose offsets are measured from `root`.
    pub fn starting_at(root: Instant) -> Self {
        Self { root }
    }

    /// Microseconds from the root to `at` (0 if `at` precedes the root).
    pub fn offset_micros(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.root).as_micros() as u64
    }
}

/// A fixed-capacity ring of the most recent request span trees.
///
/// Writes happen once per request *after* it was answered (the serving
/// dispatcher is the only writer), so a mutex-protected ring is fine here —
/// the lock-free constraint applies to the per-sample metric paths, not to
/// this once-per-request bookkeeping. Readers drain a clone and never block
/// recording for long.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: Mutex<VecDeque<SpanTree>>,
    capacity: usize,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` trees (capacity 0 records
    /// nothing).
    pub fn new(capacity: usize) -> Self {
        Self { ring: Mutex::new(VecDeque::with_capacity(capacity)), capacity }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of trees currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("flight recorder poisoned").len()
    }

    /// Whether the recorder holds no trees yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a tree, evicting the oldest once full.
    pub fn record(&self, tree: SpanTree) {
        if self.capacity == 0 {
            return;
        }
        let mut ring = self.ring.lock().expect("flight recorder poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(tree);
    }

    /// The most recent `n` trees, oldest first.
    pub fn last(&self, n: usize) -> Vec<SpanTree> {
        let ring = self.ring.lock().expect("flight recorder poisoned");
        ring.iter().skip(ring.len().saturating_sub(n)).cloned().collect()
    }

    /// The slowest recorded tree by root duration (tail debugging: "show me
    /// the worst request still in the ring").
    pub fn slowest(&self) -> Option<SpanTree> {
        let ring = self.ring.lock().expect("flight recorder poisoned");
        ring.iter().max_by_key(|t| t.duration_micros).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree(duration: u64) -> SpanTree {
        SpanTree::leaf("request", 0, duration).with_child(SpanTree::leaf("queue", 0, duration / 4)).with_child(
            SpanTree::leaf("service", duration / 4, duration - duration / 4).with_child(SpanTree::leaf(
                "batch_assembly",
                duration / 4,
                2,
            )),
        )
    }

    #[test]
    fn span_tree_structure_and_lookup() {
        let tree = sample_tree(100);
        assert_eq!(tree.span_count(), 4);
        assert_eq!(tree.find("batch_assembly").unwrap().duration_micros, 2);
        assert!(tree.find("missing").is_none());
        let rendered = tree.render();
        assert!(rendered.contains("request"), "{rendered}");
        assert!(rendered.contains("batch_assembly"), "{rendered}");
    }

    #[test]
    fn span_tree_serde_round_trip() {
        let tree = sample_tree(812);
        let json = serde_json::to_string(&tree).expect("serialize");
        let back: SpanTree = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(tree, back);
    }

    #[test]
    fn flight_recorder_keeps_the_last_n() {
        let recorder = FlightRecorder::new(3);
        for d in 1..=5u64 {
            recorder.record(sample_tree(d));
        }
        assert_eq!(recorder.len(), 3);
        let last = recorder.last(10);
        let durations: Vec<u64> = last.iter().map(|t| t.duration_micros).collect();
        assert_eq!(durations, vec![3, 4, 5], "oldest evicted, oldest-first order");
        assert_eq!(recorder.last(2).len(), 2);
        assert_eq!(recorder.slowest().unwrap().duration_micros, 5);
    }

    #[test]
    fn zero_capacity_recorder_is_inert() {
        let recorder = FlightRecorder::new(0);
        recorder.record(sample_tree(9));
        assert!(recorder.is_empty());
        assert!(recorder.slowest().is_none());
    }

    #[test]
    fn span_clock_offsets_saturate() {
        let root = Instant::now();
        let clock = SpanClock::starting_at(root);
        assert_eq!(clock.offset_micros(root), 0);
        let later = root + std::time::Duration::from_micros(250);
        assert_eq!(clock.offset_micros(later), 250);
    }
}
