//! # ham-faults
//!
//! Deterministic, seeded fault injection for chaos-testing the serving and
//! online-training paths.
//!
//! Production failure modes — a shard that suddenly takes 50ms, a scoring
//! thread that panics, a publish that hits a transient error — are exactly
//! the ones ordinary tests never exercise, because they never happen on a
//! healthy dev box. This crate makes them *injectable and reproducible*: a
//! [`FaultInjector`] is built from a compact spec string (usually the
//! `HAM_FAULTS` environment variable), every probabilistic decision is drawn
//! from a seeded counter-based generator (no global RNG state, no
//! wall-clock), and the same spec + the same sequence of queries always
//! yields the same injected faults. A chaos test that fails therefore fails
//! the same way on every run and every machine.
//!
//! ## Spec grammar
//!
//! A spec is a `;`-separated list of clauses:
//!
//! | clause | meaning |
//! |---|---|
//! | `seed=<u64>` | seed for probabilistic draws (default 0) |
//! | `shard_slow=<shard\|*>:<dur>[:p<prob>]` | delay shard scoring by `<dur>` (`ms`/`us`/`s` suffix), on shard `<shard>` or every shard (`*`), with probability `p<prob>` (default always) |
//! | `shard_panic=<shard\|*>[:p<prob>]` | panic inside shard scoring |
//! | `publish_fail=n<count>` | fail the first `<count>` publish attempts (process-wide) |
//! | `publish_fail=p<prob>` | fail each publish attempt with probability `<prob>` |
//! | `snapshot_corrupt=r<round>` | corrupt the candidate snapshot of online round `<round>` (repeatable) |
//!
//! Example: `HAM_FAULTS="seed=7;shard_slow=0:2ms;shard_panic=*:p0.01;publish_fail=n2"`.
//!
//! ## Wiring
//!
//! The consumers ([`RecServer`] in `ham-serve`, `OnlineTrainer` in
//! `ham-online`) pick up `HAM_FAULTS` at construction via
//! [`FaultInjector::from_env`] — the same `Option<Arc>`-gated handle shape as
//! `ham-telemetry`, so a disabled injector is a null pointer check on the hot
//! path. Tests construct injectors explicitly with [`FaultInjector::parse`].
//!
//! [`RecServer`]: ../ham_serve/server/struct.RecServer.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A fault to apply to one shard-scoring call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFault {
    /// Sleep for the given duration before scoring (a slow shard).
    Delay(Duration),
    /// Panic instead of scoring (a crashed shard).
    Panic,
}

#[derive(Debug)]
enum ShardFaultKind {
    Delay(Duration),
    Panic,
}

/// One `shard_slow=` / `shard_panic=` clause.
#[derive(Debug)]
struct ShardRule {
    /// `None` matches every shard (`*`).
    shard: Option<usize>,
    kind: ShardFaultKind,
    /// Probability the rule fires per matching call (1.0 = always).
    probability: f64,
    /// Per-rule draw counter: the n-th evaluation of this rule draws
    /// `mix(seed, rule_index, n)` — independent of every other rule.
    draws: AtomicU64,
}

#[derive(Debug)]
enum PublishRule {
    /// Fail the first `n` publish attempts seen by this injector.
    FirstN(u64),
    /// Fail each attempt with this probability.
    Probability(f64),
}

#[derive(Debug)]
struct Inner {
    spec: String,
    seed: u64,
    shard_rules: Vec<ShardRule>,
    publish: Option<PublishRule>,
    publish_draws: AtomicU64,
    corrupt_rounds: Vec<u64>,
}

/// A malformed fault spec, with the offending clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError {
    /// The clause that failed to parse.
    pub clause: String,
    /// What was wrong with it.
    pub reason: String,
}

impl std::fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed fault clause `{}`: {}", self.clause, self.reason)
    }
}

impl std::error::Error for FaultSpecError {}

/// The seeded fault-injection handle. Cheap to clone (an `Arc` bump when
/// enabled, a `None` copy when disabled) and safe to consult from any thread.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    inner: Option<Arc<Inner>>,
}

impl FaultInjector {
    /// The no-op injector: every query answers "no fault". This is what
    /// production gets — the fault checks compile down to an `Option` test.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Builds the injector from the `HAM_FAULTS` environment variable:
    /// unset or empty yields [`Self::disabled`].
    ///
    /// # Panics
    /// Panics on a malformed spec — a chaos run with a typo'd spec must fail
    /// loudly at startup, not silently run fault-free.
    pub fn from_env() -> Self {
        match std::env::var("HAM_FAULTS") {
            Ok(spec) if !spec.trim().is_empty() => Self::parse(&spec).unwrap_or_else(|e| panic!("HAM_FAULTS: {e}")),
            _ => Self::disabled(),
        }
    }

    /// Parses a fault spec (see the crate docs for the grammar). An
    /// empty/whitespace spec yields [`Self::disabled`].
    pub fn parse(spec: &str) -> Result<Self, FaultSpecError> {
        let mut seed = 0u64;
        let mut shard_rules = Vec::new();
        let mut publish = None;
        let mut corrupt_rounds = Vec::new();
        for clause in spec.split(';').map(str::trim).filter(|c| !c.is_empty()) {
            let err = |reason: &str| FaultSpecError { clause: clause.to_string(), reason: reason.to_string() };
            let (key, value) = clause.split_once('=').ok_or_else(|| err("expected key=value"))?;
            match key.trim() {
                "seed" => seed = value.trim().parse().map_err(|_| err("seed must be a u64"))?,
                "shard_slow" => {
                    let mut parts = value.split(':');
                    let shard = parse_shard_selector(parts.next().unwrap_or(""), &err)?;
                    let delay = parse_duration(parts.next().ok_or_else(|| err("missing delay duration"))?, &err)?;
                    let probability = parse_optional_probability(parts.next(), &err)?;
                    if parts.next().is_some() {
                        return Err(err("too many `:` fields"));
                    }
                    shard_rules.push(ShardRule {
                        shard,
                        kind: ShardFaultKind::Delay(delay),
                        probability,
                        draws: AtomicU64::new(0),
                    });
                }
                "shard_panic" => {
                    let mut parts = value.split(':');
                    let shard = parse_shard_selector(parts.next().unwrap_or(""), &err)?;
                    let probability = parse_optional_probability(parts.next(), &err)?;
                    if parts.next().is_some() {
                        return Err(err("too many `:` fields"));
                    }
                    shard_rules.push(ShardRule {
                        shard,
                        kind: ShardFaultKind::Panic,
                        probability,
                        draws: AtomicU64::new(0),
                    });
                }
                "publish_fail" => {
                    let value = value.trim();
                    publish = Some(if let Some(n) = value.strip_prefix('n') {
                        PublishRule::FirstN(n.parse().map_err(|_| err("publish_fail=n<count> needs a u64 count"))?)
                    } else if let Some(p) = value.strip_prefix('p') {
                        PublishRule::Probability(parse_probability(p, &err)?)
                    } else {
                        return Err(err("publish_fail takes n<count> or p<prob>"));
                    });
                }
                "snapshot_corrupt" => {
                    let round = value
                        .trim()
                        .strip_prefix('r')
                        .ok_or_else(|| err("snapshot_corrupt takes r<round>"))?
                        .parse()
                        .map_err(|_| err("snapshot_corrupt round must be a u64"))?;
                    corrupt_rounds.push(round);
                }
                other => return Err(err(&format!("unknown fault kind `{other}`"))),
            }
        }
        if shard_rules.is_empty() && publish.is_none() && corrupt_rounds.is_empty() {
            return Ok(Self::disabled());
        }
        Ok(Self {
            inner: Some(Arc::new(Inner {
                spec: spec.to_string(),
                seed,
                shard_rules,
                publish,
                publish_draws: AtomicU64::new(0),
                corrupt_rounds,
            })),
        })
    }

    /// Whether any fault rule is armed. Consumers use this to route onto the
    /// fault-aware code path; a disabled injector must add nothing but this
    /// branch to the hot path.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The spec this injector was built from (`None` when disabled).
    pub fn spec(&self) -> Option<&str> {
        self.inner.as_deref().map(|inner| inner.spec.as_str())
    }

    /// The fault (if any) to apply to the next scoring call against `shard`.
    /// Rules are evaluated in spec order; the first one that fires wins.
    pub fn shard_fault(&self, shard: usize) -> Option<ShardFault> {
        let inner = self.inner.as_deref()?;
        for (index, rule) in inner.shard_rules.iter().enumerate() {
            if rule.shard.is_some_and(|s| s != shard) {
                continue;
            }
            if !fires(inner.seed, index as u64, &rule.draws, rule.probability) {
                continue;
            }
            return Some(match rule.kind {
                ShardFaultKind::Delay(d) => ShardFault::Delay(d),
                ShardFaultKind::Panic => ShardFault::Panic,
            });
        }
        None
    }

    /// Whether the next publish attempt should fail. Each call consumes one
    /// attempt: `publish_fail=n2` fails exactly the first two calls
    /// process-wide (any retry loop with more than two attempts succeeds).
    pub fn fail_publish(&self) -> bool {
        let Some(inner) = self.inner.as_deref() else { return false };
        match inner.publish {
            None => false,
            Some(PublishRule::FirstN(n)) => inner.publish_draws.fetch_add(1, Ordering::Relaxed) < n,
            // rule index u64::MAX keeps publish draws disjoint from every
            // shard rule's stream under the same seed
            Some(PublishRule::Probability(p)) => fires(inner.seed, u64::MAX, &inner.publish_draws, p),
        }
    }

    /// Whether online round `round`'s candidate snapshot should be corrupted
    /// (`snapshot_corrupt=r<round>`).
    pub fn corrupt_snapshot(&self, round: u64) -> bool {
        self.inner.as_deref().is_some_and(|inner| inner.corrupt_rounds.contains(&round))
    }
}

/// Whether a probabilistic rule fires on its next draw: deterministic in
/// (seed, rule index, draw count) — no global RNG, no wall clock.
fn fires(seed: u64, rule_index: u64, draws: &AtomicU64, probability: f64) -> bool {
    if probability >= 1.0 {
        // still consume a draw so adding `:p1.0` does not shift later draws
        draws.fetch_add(1, Ordering::Relaxed);
        return true;
    }
    if probability <= 0.0 {
        draws.fetch_add(1, Ordering::Relaxed);
        return false;
    }
    let n = draws.fetch_add(1, Ordering::Relaxed);
    let x = splitmix64(seed ^ rule_index.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ n);
    // map the top 53 bits to [0, 1)
    let unit = (x >> 11) as f64 / (1u64 << 53) as f64;
    unit < probability
}

/// SplitMix64: the standard 64-bit finalizer-style generator — one
/// multiply-xor-shift chain per draw, perfectly reproducible.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn parse_shard_selector(field: &str, err: &impl Fn(&str) -> FaultSpecError) -> Result<Option<usize>, FaultSpecError> {
    let field = field.trim();
    if field == "*" {
        Ok(None)
    } else {
        field.parse().map(Some).map_err(|_| err("shard selector must be a shard index or `*`"))
    }
}

fn parse_duration(field: &str, err: &impl Fn(&str) -> FaultSpecError) -> Result<Duration, FaultSpecError> {
    let field = field.trim();
    let (digits, unit): (&str, fn(u64) -> Duration) = if let Some(d) = field.strip_suffix("ms") {
        (d, Duration::from_millis)
    } else if let Some(d) = field.strip_suffix("us") {
        (d, Duration::from_micros)
    } else if let Some(d) = field.strip_suffix('s') {
        (d, Duration::from_secs)
    } else {
        return Err(err("duration needs a ms/us/s suffix"));
    };
    digits.parse().map(unit).map_err(|_| err("duration must be <u64><ms|us|s>"))
}

fn parse_optional_probability(
    field: Option<&str>,
    err: &impl Fn(&str) -> FaultSpecError,
) -> Result<f64, FaultSpecError> {
    match field {
        None => Ok(1.0),
        Some(p) => parse_probability(
            p.trim().strip_prefix('p').ok_or_else(|| err("probability field must look like p0.25"))?,
            err,
        ),
    }
}

fn parse_probability(digits: &str, err: &impl Fn(&str) -> FaultSpecError) -> Result<f64, FaultSpecError> {
    let p: f64 = digits.parse().map_err(|_| err("probability must be a float"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(err("probability must be within [0, 1]"));
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_and_empty_specs_inject_nothing() {
        for injector in
            [FaultInjector::disabled(), FaultInjector::parse("").unwrap(), FaultInjector::parse("  ").unwrap()]
        {
            assert!(!injector.is_enabled());
            assert_eq!(injector.shard_fault(0), None);
            assert!(!injector.fail_publish());
            assert!(!injector.corrupt_snapshot(1));
        }
    }

    #[test]
    fn shard_slow_targets_one_shard_or_all() {
        let one = FaultInjector::parse("shard_slow=2:5ms").unwrap();
        assert_eq!(one.shard_fault(2), Some(ShardFault::Delay(Duration::from_millis(5))));
        assert_eq!(one.shard_fault(0), None);
        let all = FaultInjector::parse("shard_slow=*:250us").unwrap();
        for s in 0..4 {
            assert_eq!(all.shard_fault(s), Some(ShardFault::Delay(Duration::from_micros(250))));
        }
    }

    #[test]
    fn shard_panic_rule_fires() {
        let injector = FaultInjector::parse("seed=3;shard_panic=1").unwrap();
        assert_eq!(injector.shard_fault(1), Some(ShardFault::Panic));
        assert_eq!(injector.shard_fault(0), None);
    }

    #[test]
    fn first_matching_rule_wins() {
        let injector = FaultInjector::parse("shard_panic=0;shard_slow=*:1ms").unwrap();
        assert_eq!(injector.shard_fault(0), Some(ShardFault::Panic));
        assert_eq!(injector.shard_fault(1), Some(ShardFault::Delay(Duration::from_millis(1))));
    }

    #[test]
    fn probabilistic_draws_are_deterministic_per_seed() {
        let draw_pattern = |seed: u64| -> Vec<bool> {
            let injector = FaultInjector::parse(&format!("seed={seed};shard_slow=*:1ms:p0.5")).unwrap();
            (0..64).map(|_| injector.shard_fault(0).is_some()).collect()
        };
        assert_eq!(draw_pattern(7), draw_pattern(7), "same seed, same faults");
        assert_ne!(draw_pattern(7), draw_pattern(8), "different seed, different faults");
        let hits = draw_pattern(7).iter().filter(|&&h| h).count();
        assert!((16..=48).contains(&hits), "p0.5 over 64 draws fired {hits} times");
    }

    #[test]
    fn publish_fail_first_n_is_exhausted_by_retries() {
        let injector = FaultInjector::parse("publish_fail=n2").unwrap();
        assert!(injector.fail_publish());
        assert!(injector.fail_publish());
        assert!(!injector.fail_publish(), "third attempt succeeds");
        assert!(!injector.fail_publish());
    }

    #[test]
    fn snapshot_corrupt_names_rounds() {
        let injector = FaultInjector::parse("snapshot_corrupt=r2;snapshot_corrupt=r5").unwrap();
        assert!(injector.corrupt_snapshot(2));
        assert!(injector.corrupt_snapshot(5));
        assert!(!injector.corrupt_snapshot(1));
        assert!(!injector.corrupt_snapshot(3));
    }

    #[test]
    fn clones_share_the_draw_state() {
        let injector = FaultInjector::parse("publish_fail=n1").unwrap();
        let clone = injector.clone();
        assert!(clone.fail_publish());
        assert!(!injector.fail_publish(), "the clone consumed the single failure");
    }

    #[test]
    fn malformed_specs_name_the_clause() {
        for (spec, fragment) in [
            ("shard_slow=0", "missing delay"),
            ("shard_slow=0:5", "suffix"),
            ("shard_slow=x:5ms", "shard selector"),
            ("shard_slow=0:5ms:0.5", "p0.25"),
            ("shard_panic=*:p1.5", "within [0, 1]"),
            ("publish_fail=2", "n<count> or p<prob>"),
            ("snapshot_corrupt=2", "r<round>"),
            ("warp_drive=1", "unknown fault kind"),
            ("seed", "key=value"),
        ] {
            let e = FaultInjector::parse(spec).unwrap_err();
            assert!(e.to_string().contains(fragment), "{spec}: {e}");
        }
    }
}
