//! Inspecting what the model learned: train HAMs_m on a Comics-like profile
//! (strong sequential structure), then look at the nearest neighbours of a few
//! items in the learned input-embedding space and check that items from the
//! same latent cluster end up close together.
//!
//! ```text
//! cargo run --example item_similarity --release
//! ```

use ham::core::{train, HamConfig, HamVariant, TrainConfig};
use ham::data::synthetic::DatasetProfile;
use ham::tensor::linalg::{cosine_similarity, most_similar_rows, normalize_rows};

fn main() {
    let profile = DatasetProfile::comics().with_scale(0.005);
    let dataset = profile.generate(31);
    println!("dataset: {} ({} users, {} items)", dataset.name, dataset.num_users(), dataset.num_items);

    let config = HamConfig::for_variant(HamVariant::HamSM).with_dimensions(32, 7, 2, 3, 2);
    let train_config = TrainConfig { epochs: 10, batch_size: 64, ..TrainConfig::default() };
    let model = train(&dataset.sequences, dataset.num_items, &config, &train_config, 5);

    // The synthetic generator assigns item i to cluster i % num_clusters; the
    // learned input embeddings should reflect that structure.
    let num_clusters = profile.num_clusters.min(dataset.num_items);
    let embeddings = normalize_rows(model.input_item_embeddings());
    let frequencies = dataset.item_frequencies();

    // Pick the three most frequent items as probes.
    let mut by_freq: Vec<usize> = (0..dataset.num_items).collect();
    by_freq.sort_by_key(|&i| std::cmp::Reverse(frequencies[i]));

    let mut same_cluster_hits = 0usize;
    let mut neighbours_total = 0usize;
    for &probe in by_freq.iter().take(3) {
        let neighbours = most_similar_rows(&embeddings, probe, 5);
        println!(
            "\nitem {probe} (cluster {}, {} interactions) — nearest neighbours:",
            probe % num_clusters,
            frequencies[probe]
        );
        for (item, similarity) in &neighbours {
            println!(
                "  item {item:>5}  cluster {:>3}  cosine {similarity:.3}  ({} interactions)",
                item % num_clusters,
                frequencies[*item]
            );
            if item % num_clusters == probe % num_clusters {
                same_cluster_hits += 1;
            }
            neighbours_total += 1;
        }
    }
    println!(
        "\n{} of {} nearest neighbours share the probe's latent cluster (chance ≈ {:.0}%)",
        same_cluster_hits,
        neighbours_total,
        100.0 / num_clusters as f64
    );

    // Sanity check on the asymmetric (input vs candidate) embeddings: the same
    // item's two embeddings are generally *not* aligned, which is exactly why
    // the paper learns two matrices (asymmetric item transitions).
    let item = by_freq[0];
    let sim = cosine_similarity(model.input_item_embeddings().row(item), model.candidate_item_embeddings().row(item));
    println!("cosine between item {item}'s input and candidate embeddings: {sim:.3}");
}
