//! Using your own interaction data end to end: parse a `user,item,timestamp,
//! rating` log, run the paper's preprocessing (binarize, filter, remap),
//! split it, grid-search HAM hyper-parameters on the validation set and
//! report test metrics — the full protocol of Section 5 on real input.
//!
//! The example generates a small CSV in a temporary directory so it runs out
//! of the box; point `load_interactions` at your own file to use real data.
//!
//! ```text
//! cargo run --example custom_dataset --release
//! ```

use ham::core::HamVariant;
use ham::data::loader::{load_interactions, parse_interactions};
use ham::data::preprocess::{preprocess, PreprocessConfig};
use ham::data::split::{split_dataset, EvalSetting};
use ham::experiments::tuning::{default_grid, grid_search, render_tuning};
use ham::experiments::ExperimentConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

fn main() {
    // 1. Create a small synthetic CSV standing in for "your" interaction log.
    let csv_path = std::env::temp_dir().join("ham_custom_dataset_example.csv");
    std::fs::write(&csv_path, synthesize_csv()).expect("write example csv");
    println!("wrote example interaction log to {}", csv_path.display());

    // 2. Load and preprocess with the paper's protocol (>=10 per user, >=5 per
    //    item, ratings >= 4 are positives).
    let interactions = load_interactions(&csv_path).expect("load interactions");
    println!("loaded {} raw interactions", interactions.len());
    let cfg = PreprocessConfig { min_user_interactions: 8, min_item_interactions: 3, positive_threshold: 4.0 };
    let dataset = preprocess("custom", &interactions, cfg);
    println!(
        "after preprocessing: {} users, {} items, {} interactions",
        dataset.num_users(),
        dataset.num_items,
        dataset.num_interactions()
    );

    // 3. Split, grid-search HAMs_m on the validation set, evaluate on test.
    let split = split_dataset(&dataset, EvalSetting::Cut8020);
    let experiment =
        ExperimentConfig { epochs: 5, d: 16, batch_size: 64, eval_threads: 2, ..ExperimentConfig::default() };
    let grid = default_grid(HamVariant::HamSM, experiment.d);
    let result = grid_search(&split, &grid[..4.min(grid.len())], &experiment);
    println!("\n{}", render_tuning(&dataset.name, &result));

    // 4. Serve a few recommendations from the final model.
    let histories = split.train_with_val();
    #[allow(clippy::needless_range_loop)]
    for user in 0..3.min(dataset.num_users()) {
        if histories[user].is_empty() {
            continue;
        }
        let top = result.final_model.recommend_top_k(user, &histories[user], 5, true);
        println!("user {user}: top-5 recommendations {top:?}");
    }

    // Round-trip sanity check of the text parser on an in-memory string.
    let reparsed = parse_interactions("1,2,3,5.0\n2,3,4\n").expect("parse");
    assert_eq!(reparsed.len(), 2);
    std::fs::remove_file(&csv_path).ok();
}

/// Builds a CSV log with embedded sequential structure: each user walks a ring
/// of item groups, rating items 4–5 inside their walk and occasionally rating
/// something random poorly (which preprocessing then drops).
fn synthesize_csv() -> String {
    let mut rng = StdRng::seed_from_u64(77);
    let mut out = String::from("# user,item,timestamp,rating\n");
    let num_users = 120;
    let num_items = 150;
    for user in 0..num_users {
        let mut position = rng.gen_range(0..num_items);
        for step in 0..30 {
            position = (position + rng.gen_range(1..4)) % num_items;
            let rating = if rng.gen_bool(0.85) { 5.0 } else { 2.0 };
            writeln!(out, "{user},{position},{step},{rating}").expect("write row");
        }
    }
    out
}
