//! A MovieLens-style scenario: compare every HAM variant on a dense,
//! movie-rating-like dataset and inspect how the synergy term changes the
//! recommendations — the use case the paper's introduction motivates with the
//! "Avengers sequel" example (sequential associations) and the
//! "candles + wine → steak" example (item synergies).
//!
//! ```text
//! cargo run --example movie_recommender --release
//! ```

use ham::core::{train, HamConfig, HamVariant, TrainConfig};
use ham::data::split::{split_dataset, EvalSetting};
use ham::data::synthetic::DatasetProfile;
use ham::eval::protocol::{evaluate, EvalConfig};

fn main() {
    // A scaled-down MovieLens-1M-like profile: dense, strong popularity.
    let dataset = DatasetProfile::ml_1m().with_scale(0.05).generate(11);
    println!(
        "dataset: {} ({} users, {} items, {:.1} interactions/user)",
        dataset.name,
        dataset.num_users(),
        dataset.num_items,
        dataset.interactions_per_user()
    );

    // The paper recommends 80-3-CUT as the most informative setting (Sec 7.3).
    let split = split_dataset(&dataset, EvalSetting::Cut803);
    let train_sequences = split.train_with_val();
    let train_config = TrainConfig { epochs: 6, batch_size: 128, ..TrainConfig::default() };
    let eval_cfg = EvalConfig { num_threads: 4, ..EvalConfig::default() };

    println!("\nvariant     Recall@5   Recall@10   NDCG@10   (80-3-CUT)");
    let mut best: Option<(String, f64)> = None;
    for variant in HamVariant::main_variants() {
        let config = HamConfig::for_variant(variant).with_dimensions(32, 7, 2, 3, 3);
        let model = train(&train_sequences, dataset.num_items, &config, &train_config, 3);
        let report = evaluate(&split, &eval_cfg, |user, history| model.score_all(user, history));
        println!(
            "{:<10} {:>9.4} {:>10.4} {:>10.4}",
            variant.name(),
            report.mean.recall_at_5,
            report.mean.recall_at_10,
            report.mean.ndcg_at_10
        );
        if best.as_ref().is_none_or(|(_, r)| report.mean.recall_at_10 > *r) {
            best = Some((variant.name().to_string(), report.mean.recall_at_10));
        }
    }
    let (best_name, best_recall) = best.expect("at least one variant ran");
    println!("\nbest variant: {best_name} (Recall@10 = {best_recall:.4})");

    // Show how the same user's recommendations change with and without the
    // synergy (latent-cross) term.
    let user = 1;
    let plain = train(
        &train_sequences,
        dataset.num_items,
        &HamConfig::for_variant(HamVariant::HamM).with_dimensions(32, 7, 2, 3, 1),
        &train_config,
        3,
    );
    let with_synergies = train(
        &train_sequences,
        dataset.num_items,
        &HamConfig::for_variant(HamVariant::HamSM).with_dimensions(32, 7, 2, 3, 3),
        &train_config,
        3,
    );
    println!("\nuser {user}: last items {:?}", &train_sequences[user][train_sequences[user].len().saturating_sub(5)..]);
    println!("  HAMm   top-5: {:?}", plain.recommend_top_k(user, &train_sequences[user], 5, true));
    println!("  HAMs_m top-5: {:?}", with_synergies.recommend_top_k(user, &train_sequences[user], 5, true));
}
