//! Quickstart: generate a small synthetic dataset, train the paper's best
//! model (HAMs_m), evaluate it against a popularity baseline and print a few
//! recommendations.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use ham::core::{train_with_history, HamConfig, HamVariant, TrainConfig};
use ham::data::split::{split_dataset, EvalSetting};
use ham::data::synthetic::DatasetProfile;
use ham::eval::protocol::{evaluate, EvalConfig};
use ham_baselines::{PopRec, SequentialRecommender};

fn main() {
    // 1. Data: a scaled-down Amazon-CDs-like dataset.
    let dataset = DatasetProfile::cds().with_scale(0.01).generate(42);
    println!(
        "dataset: {} users, {} items, {} interactions",
        dataset.num_users(),
        dataset.num_items,
        dataset.num_interactions()
    );

    // 2. Split with the paper's most common protocol (80-20-CUT).
    let split = split_dataset(&dataset, EvalSetting::Cut8020);
    let train_sequences = split.train_with_val();

    // 3. Train HAMs_m (mean pooling + order-2 synergies).
    let config = HamConfig::for_variant(HamVariant::HamSM).with_dimensions(32, 5, 2, 3, 2);
    let train_config = TrainConfig { epochs: 8, batch_size: 64, ..TrainConfig::default() };
    let (model, history) = train_with_history(&train_sequences, dataset.num_items, &config, &train_config, 7);
    for stats in &history {
        println!("epoch {:>2}: mean BPR loss {:.4}", stats.epoch, stats.mean_loss);
    }

    // 4. Evaluate against a popularity baseline.
    let eval_cfg = EvalConfig { num_threads: 4, ..EvalConfig::default() };
    let ham_report = evaluate(&split, &eval_cfg, |user, history| model.score_all(user, history));
    let pop = PopRec::fit(&train_sequences, dataset.num_items);
    let pop_report = evaluate(&split, &eval_cfg, |user, history| pop.score_all(user, history));
    println!("\n              Recall@10    NDCG@10");
    println!("HAMs_m        {:>9.4}  {:>9.4}", ham_report.mean.recall_at_10, ham_report.mean.ndcg_at_10);
    println!("PopRec        {:>9.4}  {:>9.4}", pop_report.mean.recall_at_10, pop_report.mean.ndcg_at_10);

    // 5. Produce recommendations for one user.
    let user = 0;
    let top = model.recommend_top_k(user, &train_sequences[user], 10, true);
    println!("\ntop-10 recommendations for user {user}: {top:?}");
}
