//! A sparse-catalogue scenario: the situation the paper argues HAM is built
//! for — very sparse interaction data where learned attention weights are
//! unreliable (Section 7.2). This example trains HAMs_m and HGN on an
//! Amazon-CDs-like sparse profile, compares their accuracy and test-time
//! latency, and prints the HGN gating-weight summary that motivates pooling.
//!
//! ```text
//! cargo run --example cold_start_catalog --release
//! ```

use ham::core::{train, HamConfig, HamVariant, TrainConfig};
use ham::data::split::{split_dataset, EvalSetting};
use ham::data::synthetic::DatasetProfile;
use ham::eval::protocol::{evaluate, EvalConfig};
use ham::eval::timing::measure_scoring_time;
use ham_baselines::{BaselineTrainConfig, Hgn, HgnConfig, SequentialRecommender};

fn main() {
    // The sparsest profile in the paper: Amazon CDs.
    let dataset = DatasetProfile::cds().with_scale(0.01).generate(23);
    let split = split_dataset(&dataset, EvalSetting::Los3);
    let train_sequences = split.train_with_val();
    println!(
        "sparse catalogue: {} users, {} items, density {:.5}",
        dataset.num_users(),
        dataset.num_items,
        dataset.density()
    );

    // Train both models with the same budget.
    let ham_cfg = HamConfig::for_variant(HamVariant::HamSM).with_dimensions(32, 5, 2, 3, 2);
    let ham = train(
        &train_sequences,
        dataset.num_items,
        &ham_cfg,
        &TrainConfig { epochs: 6, batch_size: 64, ..TrainConfig::default() },
        1,
    );
    let hgn = Hgn::fit(
        &train_sequences,
        dataset.num_items,
        &HgnConfig { d: 32, seq_len: 5, targets: 3 },
        &BaselineTrainConfig { epochs: 6, batch_size: 64, ..BaselineTrainConfig::default() },
        1,
    );

    // Accuracy.
    let eval_cfg = EvalConfig { num_threads: 4, ..EvalConfig::default() };
    let ham_report = evaluate(&split, &eval_cfg, |u, h| ham.score_all(u, h));
    let hgn_report = evaluate(&split, &eval_cfg, |u, h| hgn.score_all(u, h));
    println!("\n          Recall@10    NDCG@10");
    println!("HAMs_m    {:>9.4}  {:>9.4}", ham_report.mean.recall_at_10, ham_report.mean.ndcg_at_10);
    println!("HGN       {:>9.4}  {:>9.4}", hgn_report.mean.recall_at_10, hgn_report.mean.ndcg_at_10);

    // Test-time latency (the Table 14 comparison, on two methods).
    let users: Vec<(usize, Vec<usize>)> = (0..split.num_users())
        .filter(|&u| !split.test[u].is_empty())
        .map(|u| (u, train_sequences[u].clone()))
        .collect();
    let ham_time = measure_scoring_time(&users, |u, h| ham.score_all(u, h));
    let hgn_time = measure_scoring_time(&users, |u, h| hgn.score_all(u, h));
    println!(
        "\ntest time per user: HAMs_m {:.2e}s, HGN {:.2e}s ({:.1}x speedup)",
        ham_time.seconds_per_user,
        hgn_time.seconds_per_user,
        ham_time.speedup_over(&hgn_time)
    );

    // The Section 7.2 observation: on sparse data, HGN's learned gating
    // weights for infrequent items stay near their 0.5 initialisation.
    let freqs = dataset.item_frequencies();
    let mut infrequent_weights = Vec::new();
    let mut frequent_weights = Vec::new();
    let median = {
        let mut sorted = freqs.clone();
        sorted.sort_unstable();
        sorted[sorted.len() / 2]
    };
    for (user, history) in train_sequences.iter().enumerate().take(200) {
        if history.is_empty() {
            continue;
        }
        for (item, weight) in hgn.instance_gating_weights(user, history) {
            if freqs[item] <= median {
                infrequent_weights.push(weight);
            } else {
                frequent_weights.push(weight);
            }
        }
    }
    let mean = |v: &[f32]| v.iter().map(|&x| x as f64).sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\nHGN instance-gating weights: infrequent items mean {:.3}, frequent items mean {:.3}",
        mean(&infrequent_weights),
        mean(&frequent_weights)
    );
    println!("(values near 0.5 indicate weights that never moved far from initialisation — the paper's");
    println!(" argument for replacing learned gating/attention with simple pooling on sparse data)");
}
