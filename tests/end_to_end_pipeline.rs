//! End-to-end integration test: synthetic data generation → split → training
//! → evaluation → serialization, across every crate of the workspace.

use ham::core::{serialize, train, HamConfig, HamVariant, TrainConfig};
use ham::data::split::{split_dataset, EvalSetting};
use ham::data::synthetic::DatasetProfile;
use ham::eval::protocol::{evaluate, EvalConfig};

fn quick_train_config() -> TrainConfig {
    TrainConfig { epochs: 2, batch_size: 64, ..TrainConfig::default() }
}

#[test]
fn full_pipeline_produces_valid_metrics_for_every_setting() {
    let dataset = DatasetProfile::tiny("e2e").generate(5);
    for setting in EvalSetting::all() {
        let split = split_dataset(&dataset, setting);
        let config = HamConfig::for_variant(HamVariant::HamSM).with_dimensions(8, 4, 2, 2, 2);
        let model = train(&split.train_with_val(), dataset.num_items, &config, &quick_train_config(), 3);
        let report = evaluate(&split, &EvalConfig::default(), |user, history| model.score_all(user, history));
        assert!(report.num_evaluated > 0, "{}: no users evaluated", setting.name());
        for metric in [report.mean.recall_at_5, report.mean.recall_at_10, report.mean.ndcg_at_5, report.mean.ndcg_at_10]
        {
            assert!((0.0..=1.0).contains(&metric), "{}: metric {metric} out of range", setting.name());
        }
        // recall@10 can never be below recall@5, same for NDCG with binary gains on ≥ positions
        assert!(report.mean.recall_at_10 >= report.mean.recall_at_5);
    }
}

#[test]
fn trained_model_survives_a_serialization_roundtrip() {
    let dataset = DatasetProfile::tiny("e2e-serialize").generate(9);
    let split = split_dataset(&dataset, EvalSetting::Cut8020);
    let config = HamConfig::for_variant(HamVariant::HamM).with_dimensions(8, 4, 2, 2, 1);
    let model = train(&split.train_with_val(), dataset.num_items, &config, &quick_train_config(), 3);

    let json = serialize::to_json(&model).expect("serialize");
    let restored = serialize::from_json(&json).expect("deserialize");

    for user in 0..3 {
        let history = &split.train_with_val()[user];
        if history.is_empty() {
            continue;
        }
        assert_eq!(model.score_all(user, history), restored.score_all(user, history));
        assert_eq!(model.recommend_top_k(user, history, 10, true), restored.recommend_top_k(user, history, 10, true));
    }
}

#[test]
fn every_ham_variant_trains_and_evaluates() {
    let dataset = DatasetProfile::tiny("e2e-variants").generate(2);
    let split = split_dataset(&dataset, EvalSetting::Los3);
    for variant in [
        HamVariant::HamX,
        HamVariant::HamM,
        HamVariant::HamSX,
        HamVariant::HamSM,
        HamVariant::HamSMNoLowOrder,
        HamVariant::HamSMNoUser,
    ] {
        let mut config = HamConfig::for_variant(variant);
        config = config.with_dimensions(8, 4, config.n_l.min(4), 2, config.synergy_order.clamp(1, 4));
        if matches!(variant, HamVariant::HamSMNoLowOrder) {
            config.n_l = 0;
        }
        let model = train(&split.train_with_val(), dataset.num_items, &config, &quick_train_config(), 1);
        assert!(model.is_finite(), "{}: non-finite embeddings after training", variant.name());
        let report = evaluate(&split, &EvalConfig::default(), |user, history| model.score_all(user, history));
        assert!(report.num_evaluated > 0, "{}: evaluated no users", variant.name());
    }
}
