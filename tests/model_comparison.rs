//! Cross-crate integration test of the method-comparison machinery: every
//! method in the paper's tables trains, evaluates and can be timed through
//! the same harness, and the HAM inference path is faster than the deep
//! baselines (the Table 14 shape).

use ham::data::split::{split_dataset, EvalSetting};
use ham::data::synthetic::DatasetProfile;
use ham::eval::timing::measure_scoring_time;
use ham::experiments::{prepare_dataset, run_methods, ExperimentConfig, Method};
use ham_core::HamVariant;

fn quick_config() -> ExperimentConfig {
    ExperimentConfig {
        scale: 1.0,
        max_users: 30,
        max_seq_len: 25,
        d: 8,
        epochs: 1,
        batch_size: 64,
        eval_threads: 2,
        ..ExperimentConfig::default()
    }
}

#[test]
fn all_paper_methods_run_through_the_harness() {
    let cfg = quick_config();
    let dataset = prepare_dataset(&DatasetProfile::tiny("comparison"), &cfg);
    let results = run_methods(&dataset, EvalSetting::Cut8020, &Method::paper_methods(), &cfg);
    assert_eq!(results.len(), 7);
    let names: Vec<&str> = results.iter().map(|r| r.method.as_str()).collect();
    assert_eq!(names, vec!["Caser", "SASRec", "HGN", "HAMx", "HAMm", "HAMs_x", "HAMs_m"]);
    for r in &results {
        assert!(r.report.num_evaluated > 0, "{}: evaluated no users", r.method);
        assert!(r.report.mean.recall_at_10.is_finite());
        assert!(r.train_seconds > 0.0);
    }
}

#[test]
fn ham_inference_is_faster_than_the_convolutional_baseline() {
    let cfg = quick_config();
    let dataset = prepare_dataset(&DatasetProfile::tiny("timing"), &cfg);
    let split = split_dataset(&dataset, EvalSetting::Cut8020);
    let train_sequences = split.train_with_val();
    let users: Vec<(usize, Vec<usize>)> = (0..split.num_users())
        .filter(|&u| !train_sequences[u].is_empty())
        .map(|u| (u, train_sequences[u].clone()))
        .collect();

    let windows = (4, 2, 2, 2);
    let ham = Method::Ham(HamVariant::HamSM).fit(&train_sequences, dataset.num_items, windows, &cfg);
    let caser = Method::Caser.fit(&train_sequences, dataset.num_items, windows, &cfg);

    let ham_time = measure_scoring_time(&users, |u, h| ham.score_all(u, h));
    let caser_time = measure_scoring_time(&users, |u, h| caser.score_all(u, h));
    assert!(
        ham_time.seconds_per_user < caser_time.seconds_per_user,
        "HAM ({:.2e}s/user) should be faster than Caser ({:.2e}s/user) at test time",
        ham_time.seconds_per_user,
        caser_time.seconds_per_user
    );
}

#[test]
fn ablated_models_differ_from_the_full_model() {
    let cfg = quick_config();
    let dataset = prepare_dataset(&DatasetProfile::tiny("ablation-int"), &cfg);
    let split = split_dataset(&dataset, EvalSetting::Cut8020);
    let train_sequences = split.train_with_val();
    let windows = (4, 2, 2, 2);
    let full = Method::Ham(HamVariant::HamSM).fit(&train_sequences, dataset.num_items, windows, &cfg);
    let no_user = Method::Ham(HamVariant::HamSMNoUser).fit(&train_sequences, dataset.num_items, windows, &cfg);
    let history = &train_sequences[0];
    assert_ne!(full.score_all(0, history), no_user.score_all(0, history));
    // the no-user model ignores the user id entirely
    assert_eq!(no_user.score_all(0, history), no_user.score_all(1, history));
}
