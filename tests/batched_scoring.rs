//! Property tests of the batched scoring kernel layer: `score_batch` must be
//! bit-compatible (≤ 1e-5) with the per-user `score_all` path across every
//! HAM variant (including the synergy variants and padded short histories),
//! and the threaded evaluation protocol must produce identical reports for
//! every thread count.

use ham::core::scorer::Scorer;
use ham::core::{HamConfig, HamModel, HamVariant};
use ham::data::split::{split_dataset, EvalSetting};
use ham::data::SequenceDataset;
use ham::eval::protocol::{evaluate, evaluate_batch, EvalConfig};
use ham_baselines::{BprMf, BprMfConfig, Hgn, HgnConfig, PopRec, SequentialRecommender};
use ham_tensor::Matrix;
use proptest::prelude::*;

const ALL_VARIANTS: [HamVariant; 6] = [
    HamVariant::HamX,
    HamVariant::HamM,
    HamVariant::HamSX,
    HamVariant::HamSM,
    HamVariant::HamSMNoLowOrder,
    HamVariant::HamSMNoUser,
];

const NUM_USERS: usize = 6;
const NUM_ITEMS: usize = 40;

fn variant_model(variant: HamVariant, seed: u64) -> HamModel {
    let base = HamConfig::for_variant(variant);
    let p = if base.uses_synergies() { 2 } else { 1 };
    let config = base.with_dimensions(12, 4, base.n_l.min(2), 2, p);
    HamModel::new(NUM_USERS, NUM_ITEMS, config, seed)
}

/// Random histories covering the padding path: lengths 1..12 over the
/// catalogue, so some histories are shorter than `n_h` and get front-padded.
fn histories_from(pool: &[usize], lengths: &[usize]) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cursor = 0usize;
    for &len in lengths {
        let mut history = Vec::with_capacity(len);
        for _ in 0..len {
            history.push(pool[cursor % pool.len()]);
            cursor += 1;
        }
        out.push(history);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `score_batch` (blocked `Q·Wᵀ` GEMM) agrees with per-user `score_all`
    /// (fused `W·q` pass) within 1e-5 for every variant, every user and every
    /// item — including length-1 histories that exercise window padding.
    #[test]
    fn score_batch_matches_score_all_for_all_variants(
        seed in 0u64..500,
        item_pool in proptest::collection::vec(0usize..NUM_ITEMS, 24..48),
        lengths in proptest::collection::vec(1usize..12, 3..7),
    ) {
        let histories = histories_from(&item_pool, &lengths);
        let users: Vec<usize> = (0..histories.len()).map(|i| i % NUM_USERS).collect();
        let history_refs: Vec<&[usize]> = histories.iter().map(|h| h.as_slice()).collect();
        for variant in ALL_VARIANTS {
            let model = variant_model(variant, seed);
            let batch = model.score_batch(&users, &history_refs);
            prop_assert_eq!(batch.shape(), (users.len(), NUM_ITEMS));
            for (i, (&user, history)) in users.iter().zip(&history_refs).enumerate() {
                let single = model.score_all(user, history);
                for (j, (&b, &s)) in batch.row(i).iter().zip(&single).enumerate() {
                    prop_assert!(
                        (b - s).abs() <= 1e-5,
                        "{}: user {} item {}: batched {} vs per-user {}",
                        variant.name(), user, j, b, s
                    );
                }
            }
        }
    }

    /// The `Scorer`-trait default batch path (row-by-row fallback) and the
    /// GEMM override agree, so callers can rely on either entry point.
    #[test]
    fn scorer_trait_fallback_agrees_with_gemm_override(seed in 0u64..200) {
        let model = variant_model(HamVariant::HamSM, seed);
        let histories = [vec![1usize, 2, 3, 4, 5], vec![7], vec![0, 9, 3]];
        let users = [0usize, 1, 2];
        let refs: Vec<&[usize]> = histories.iter().map(|h| h.as_slice()).collect();
        let gemm = Scorer::score_batch(&model, &users, &refs);
        let fallback = ham::core::scorer::score_batch_fallback(
            Scorer::num_items(&model), &users, &refs, |u, s| model.score_all(u, s));
        for i in 0..users.len() {
            for j in 0..NUM_ITEMS {
                prop_assert!((gemm.get(i, j) - fallback.get(i, j)).abs() <= 1e-5);
            }
        }
    }
}

fn eval_dataset(seed: usize) -> SequenceDataset {
    let sequences: Vec<Vec<usize>> =
        (0..NUM_USERS).map(|u| (0..25).map(|t| (u * 7 + t * (seed + 1)) % NUM_ITEMS).collect()).collect();
    SequenceDataset::new("batched-eval", sequences, NUM_ITEMS)
}

/// `evaluate` with `num_threads = 4` produces an identical report (per-user
/// metrics and means) to `num_threads = 1`, for both the per-user and the
/// batched protocol entry points.
#[test]
fn threaded_evaluation_is_deterministic_wrt_thread_count() {
    let split = split_dataset(&eval_dataset(3), EvalSetting::Cut8020);
    let model = variant_model(HamVariant::HamSM, 17);

    let report_for = |threads: usize| {
        let config = EvalConfig { num_threads: threads, ..EvalConfig::default() };
        evaluate(&split, &config, |u, h| model.score_all(u, h))
    };
    let batch_report_for = |threads: usize| {
        let config = EvalConfig { num_threads: threads, ..EvalConfig::default() };
        evaluate_batch(&split, &config, |users, histories| model.score_batch(users, histories))
    };

    let sequential = report_for(1);
    let threaded = report_for(4);
    assert_eq!(sequential.per_user, threaded.per_user);
    assert_eq!(sequential.mean, threaded.mean);
    assert_eq!(sequential.num_evaluated, threaded.num_evaluated);

    let batched_sequential = batch_report_for(1);
    let batched_threaded = batch_report_for(4);
    assert_eq!(batched_sequential.per_user, batched_threaded.per_user);
    assert_eq!(batched_sequential.mean, batched_threaded.mean);

    // The batched protocol ranks from GEMM scores; float rounding vs the
    // fused per-user pass stays below any metric decision boundary here.
    assert_eq!(sequential.per_user, batched_sequential.per_user);
}

/// Baselines' batched scorers agree with their per-user paths too.
#[test]
fn baseline_score_batch_matches_score_all() {
    let data = eval_dataset(5);
    let users: Vec<usize> = (0..6).collect();
    let history_refs: Vec<&[usize]> = users.iter().map(|&u| data.sequences[u].as_slice()).collect();

    let bprmf = BprMf::fit(
        &data.sequences,
        data.num_items,
        &BprMfConfig { d: 8, ..Default::default() },
        &Default::default(),
        3,
    );
    let hgn =
        Hgn::fit(&data.sequences, data.num_items, &HgnConfig { d: 8, seq_len: 4, targets: 2 }, &Default::default(), 3);
    let poprec = PopRec::fit(&data.sequences, data.num_items);

    let models: [&dyn SequentialRecommender; 3] = [&bprmf, &hgn, &poprec];
    for model in models {
        let batch = model.score_batch(&users, &history_refs);
        assert_eq!(batch.shape(), (users.len(), data.num_items), "{}", model.name());
        for (i, (&u, h)) in users.iter().zip(&history_refs).enumerate() {
            let single = model.score_all(u, h);
            for (j, &s) in single.iter().enumerate() {
                assert!((batch.get(i, j) - s).abs() <= 1e-5, "{}: user {u} item {j}", model.name());
            }
        }
    }
}

/// The batched protocol validates the score-matrix shape.
#[test]
#[should_panic(expected = "num_users, num_items")]
fn wrong_batch_shape_panics() {
    let split = split_dataset(&eval_dataset(1), EvalSetting::Cut8020);
    let _ = evaluate_batch(&split, &EvalConfig::default(), |users, _| Matrix::zeros(users.len(), 3));
}
