//! Property-based integration tests of cross-crate invariants: metric bounds,
//! ranking consistency, split reconstruction, pooling algebra and the synergy
//! closed form, on randomly generated inputs.

use ham::core::synergy::{apply_latent_cross, synergy_vector};
use ham::core::{HamConfig, HamModel, HamVariant};
use ham::data::split::{split_sequence, EvalSetting};
use ham::eval::metrics::{ndcg_at_k, recall_at_k};
use ham_tensor::ops::top_k_indices;
use ham_tensor::pool::{max_pool_rows, mean_pool_rows};
use ham_tensor::Matrix;
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Recall and NDCG are always in [0, 1] and NDCG never exceeds recall's
    /// indicator structure (both zero together).
    #[test]
    fn metrics_are_bounded(
        recommended in proptest::collection::vec(0usize..100, 0..30),
        truth in proptest::collection::hash_set(0usize..100, 0..10),
        k in 1usize..20,
    ) {
        let truth: HashSet<usize> = truth.into_iter().collect();
        let recall = recall_at_k(&recommended, &truth, k);
        let ndcg = ndcg_at_k(&recommended, &truth, k);
        prop_assert!((0.0..=1.0).contains(&recall));
        prop_assert!((0.0..=1.0).contains(&ndcg));
        prop_assert_eq!(recall == 0.0, ndcg == 0.0);
    }

    /// top_k returns unique indices sorted by descending score.
    #[test]
    fn top_k_is_sorted_and_unique(scores in proptest::collection::vec(-100.0f32..100.0, 0..200), k in 0usize..50) {
        let top = top_k_indices(&scores, k);
        prop_assert_eq!(top.len(), k.min(scores.len()));
        for pair in top.windows(2) {
            prop_assert!(scores[pair[0]] >= scores[pair[1]]);
        }
        let unique: HashSet<usize> = top.iter().copied().collect();
        prop_assert_eq!(unique.len(), top.len());
        // every returned score is >= every excluded score
        if let Some(&last) = top.last() {
            let excluded_max = scores
                .iter()
                .enumerate()
                .filter(|(i, _)| !unique.contains(i))
                .map(|(_, &s)| s)
                .fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(scores[last] >= excluded_max);
        }
    }

    /// Every split setting reconstructs a prefix-preserving partition of the
    /// original sequence.
    #[test]
    fn splits_partition_the_sequence(len in 0usize..200) {
        let seq: Vec<usize> = (0..len).collect();
        for setting in EvalSetting::all() {
            let (train, val, test) = split_sequence(&seq, setting);
            let mut joined = train.clone();
            joined.extend(val);
            joined.extend(test);
            prop_assert!(joined.len() <= seq.len());
            prop_assert_eq!(&joined[..], &seq[..joined.len()]);
        }
    }

    /// Mean pooling is bounded by max pooling element-wise, and both are
    /// permutation-invariant over the window rows.
    #[test]
    fn pooling_algebra(values in proptest::collection::vec(-10.0f32..10.0, 4..40)) {
        let cols = 4usize;
        let rows = values.len() / cols;
        let values = &values[..rows * cols];
        let m = Matrix::from_vec(rows, cols, values.to_vec());
        let mean = mean_pool_rows(&m);
        let (max, _) = max_pool_rows(&m);
        for c in 0..cols {
            prop_assert!(mean[c] <= max[c] + 1e-5);
        }
        // permute rows: pooling results must not change
        let mut permuted_rows: Vec<&[f32]> = (0..rows).map(|r| m.row(r)).collect();
        permuted_rows.reverse();
        let permuted = Matrix::from_rows(&permuted_rows);
        let mean_p = mean_pool_rows(&permuted);
        for c in 0..cols {
            prop_assert!((mean[c] - mean_p[c]).abs() < 1e-4);
        }
        prop_assert_eq!(max, max_pool_rows(&permuted).0);
    }

    /// The order-2 synergy closed form matches the literal double sum of
    /// Eq. 2–4 on random windows.
    #[test]
    fn synergy_closed_form_matches_double_sum(values in proptest::collection::vec(-2.0f32..2.0, 6..30)) {
        let cols = 3usize;
        let rows = values.len() / cols;
        let values = &values[..rows * cols];
        let m = Matrix::from_vec(rows, cols, values.to_vec());
        let fast = synergy_vector(&m, 2);
        // literal Eq. 2-4: mean_j sum_{k != j} v_j ∘ v_k
        let mut expected = vec![0.0f32; cols];
        for j in 0..rows {
            for k in 0..rows {
                if j == k { continue; }
                for (c, e) in expected.iter_mut().enumerate() {
                    *e += m.get(j, c) * m.get(k, c);
                }
            }
        }
        expected.iter_mut().for_each(|v| *v /= rows as f32);
        for c in 0..cols {
            prop_assert!((fast[c] - expected[c]).abs() < 1e-3, "col {}: {} vs {}", c, fast[c], expected[c]);
        }
        // latent cross with zero synergies is the identity
        let h = vec![1.0f32; cols];
        prop_assert_eq!(apply_latent_cross(&h, &[]), h.clone());
    }

    /// The model's scoring decomposition r = q·w holds for random untrained
    /// models: score_items always agrees with score_all on any candidate set.
    #[test]
    fn model_scoring_is_consistent(seed in 0u64..1000, history in proptest::collection::vec(0usize..30, 1..12)) {
        let config = HamConfig::for_variant(HamVariant::HamSM).with_dimensions(6, 4, 2, 2, 2);
        let model = HamModel::new(3, 30, config, seed);
        let all = model.score_all(1, &history);
        let candidates: Vec<usize> = (0..30).step_by(3).collect();
        let subset = model.score_items(1, &history, &candidates);
        for (i, &item) in candidates.iter().enumerate() {
            prop_assert!((all[item] - subset[i]).abs() < 1e-5);
        }
        let top = model.recommend_top_k(1, &history, 10, false);
        prop_assert_eq!(top.len(), 10);
        for pair in top.windows(2) {
            prop_assert!(all[pair[0]] >= all[pair[1]]);
        }
    }
}
