//! Reproducibility guarantees: every pipeline stage is deterministic given a
//! seed, and different seeds genuinely change the outcome.

use ham::core::{train, HamConfig, HamVariant, TrainConfig};
use ham::data::split::{split_dataset, EvalSetting};
use ham::data::synthetic::DatasetProfile;
use ham::eval::protocol::{evaluate, EvalConfig};

fn train_cfg() -> TrainConfig {
    TrainConfig { epochs: 2, batch_size: 64, ..TrainConfig::default() }
}

#[test]
fn dataset_generation_is_seed_deterministic() {
    let profile = DatasetProfile::cds().with_scale(0.002);
    let a = profile.generate(123);
    let b = profile.generate(123);
    assert_eq!(a.sequences, b.sequences);
    assert_ne!(a.sequences, profile.generate(124).sequences);
}

#[test]
fn training_and_evaluation_are_seed_deterministic() {
    let dataset = DatasetProfile::tiny("repro").generate(7);
    let split = split_dataset(&dataset, EvalSetting::Cut8020);
    let config = HamConfig::for_variant(HamVariant::HamSM).with_dimensions(8, 4, 2, 2, 2);

    let run = || {
        let model = train(&split.train_with_val(), dataset.num_items, &config, &train_cfg(), 99);
        evaluate(&split, &EvalConfig::default(), |u, h| model.score_all(u, h))
    };
    let first = run();
    let second = run();
    assert_eq!(first.mean, second.mean);
    assert_eq!(first.per_user, second.per_user);
}

#[test]
fn different_seeds_produce_different_models() {
    let dataset = DatasetProfile::tiny("repro-seeds").generate(7);
    let split = split_dataset(&dataset, EvalSetting::Cut8020);
    let config = HamConfig::for_variant(HamVariant::HamM).with_dimensions(8, 4, 2, 2, 1);
    let a = train(&split.train_with_val(), dataset.num_items, &config, &train_cfg(), 1);
    let b = train(&split.train_with_val(), dataset.num_items, &config, &train_cfg(), 2);
    let history = &split.train_with_val()[0];
    assert_ne!(a.score_all(0, history), b.score_all(0, history));
}

#[test]
fn baseline_training_is_seed_deterministic() {
    use ham_baselines::{BaselineTrainConfig, Hgn, HgnConfig, SequentialRecommender};
    let dataset = DatasetProfile::tiny("repro-hgn").generate(4);
    let cfg = HgnConfig { d: 8, seq_len: 4, targets: 2 };
    let tc = BaselineTrainConfig { epochs: 1, batch_size: 64, ..BaselineTrainConfig::default() };
    let a = Hgn::fit(&dataset.sequences, dataset.num_items, &cfg, &tc, 5);
    let b = Hgn::fit(&dataset.sequences, dataset.num_items, &cfg, &tc, 5);
    assert_eq!(a.score_all(0, &dataset.sequences[0]), b.score_all(0, &dataset.sequences[0]));
}
