//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment of this workspace has no access to crates.io, so the
//! small slice of the `rand` 0.8 API that the reproduction actually uses is
//! vendored here: the [`Rng`] / [`SeedableRng`] traits, [`rngs::StdRng`]
//! (a xoshiro256++ generator seeded with SplitMix64) and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is deterministic for a given seed — every experiment in the
//! workspace is reproducible — but the streams do **not** match upstream
//! `rand`'s ChaCha-based `StdRng`.

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from a range by an [`Rng`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a uniform sample from `[low, high)` (`high` inclusive when
    /// `inclusive` is set).
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self {
                let span = (high as u64).wrapping_sub(low as u64).wrapping_add(inclusive as u64);
                assert!(span > 0, "gen_range: empty range");
                low.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self, _inclusive: bool) -> Self {
        assert!(low < high, "gen_range: empty float range");
        let v = low + (high - low) * unit_f64(rng.next_u64());
        if v < high {
            v
        } else {
            low
        }
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self, _inclusive: bool) -> Self {
        assert!(low < high, "gen_range: empty float range");
        let v = low + (high - low) * unit_f64(rng.next_u64()) as f32;
        if v < high {
            v
        } else {
            low
        }
    }
}

/// Maps a raw 64-bit draw to the unit interval `[0, 1)` with 53 random bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// A source of randomness, mirroring the subset of `rand::Rng` the workspace
/// relies on.
pub trait Rng {
    /// The next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T: SampleUniform, SR: SampleRange<T>>(&mut self, range: SR) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1], got {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++ with
    /// SplitMix64 seed expansion.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self { s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i = rng.gen_range(2usize..=4);
            assert!((2..=4).contains(&i));
        }
    }

    #[test]
    fn float_draws_cover_the_interval_roughly_uniformly() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_probability_is_roughly_right() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_permutes_in_place() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle leaving the identity is astronomically unlikely");
    }
}
