//! Minimal, dependency-free stand-in for `criterion`.
//!
//! Implements the subset of the criterion 0.5 API used by the workspace's
//! benches — `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, `black_box` and the
//! `criterion_group!` / `criterion_main!` macros — with a simple adaptive
//! timing loop instead of criterion's statistical machinery.
//!
//! Each benchmark warms up briefly, then runs batches until a wall-clock
//! budget is spent, and reports the mean nanoseconds per iteration on stdout
//! in a stable `bench: <group>/<name> ... <ns> ns/iter` format that scripts
//! can grep.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), sample_size: 50 }
    }

    /// Runs a stand-alone benchmark (treated as a single-entry group).
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(name, f);
        self
    }
}

/// Identifier of one benchmark within a group (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{}", name.into(), parameter) }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// A group of benchmarks sharing a name prefix and sample-size setting.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of samples (scales the measurement budget).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&self.name, &id.to_string());
        self
    }

    /// Runs one benchmark that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&self.name, &id.to_string());
        self
    }

    /// Ends the group (prints nothing; provided for API compatibility).
    pub fn finish(&mut self) {}
}

/// Drives the timing loop for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self { sample_size, mean_ns: 0.0, iters: 0 }
    }

    /// Measures a closure: warm-up, then timed batches until the budget is
    /// spent. The closure's output is passed through [`black_box`].
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up and per-iteration cost estimate.
        let warmup_start = Instant::now();
        black_box(f());
        let once = warmup_start.elapsed().max(Duration::from_nanos(1));

        // Budget scales mildly with sample_size; capped so huge fixtures
        // (whole training epochs) stay affordable.
        let budget = (Duration::from_millis(2 * self.sample_size as u64))
            .clamp(Duration::from_millis(20), Duration::from_millis(500));
        let per_batch = (budget.as_nanos() / 10 / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < budget {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(f());
            }
            total += start.elapsed();
            iters += per_batch;
        }
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }

    fn report(&self, group: &str, id: &str) {
        let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
        if self.iters == 0 {
            println!("bench: {label} ... no measurement (Bencher::iter never called)");
        } else {
            println!("bench: {label} ... {:.0} ns/iter ({} iters)", self.mean_ns, self.iters);
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.sample_size(10);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_n", 50), &50u64, |b, &n| b.iter(|| (0..n).sum::<u64>()));
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
    }
}
