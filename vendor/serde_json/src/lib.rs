//! Minimal, dependency-free stand-in for `serde_json`: renders the vendored
//! `serde::Value` document model to JSON text and parses it back.
//!
//! Numbers are printed with Rust's shortest-round-trip float formatting, so
//! every `f32` / `f64` (and every integer up to 2^53) survives a
//! serialize → parse cycle bit-exactly.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// A JSON serialization or parse error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Parses a JSON string into any deserializable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    if n.is_finite() {
        if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
            out.push_str(&format!("{}", n as i64));
        } else {
            // Rust's float Display is shortest-round-trip, so parsing the
            // printed text recovers the exact f64.
            out.push_str(&format!("{n}"));
        }
    } else {
        // JSON has no NaN / infinity; degrade to null like serde_json's
        // arbitrary-precision mode would error. Models are finite in practice.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r') {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::String(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!("unexpected character `{}` at byte {}", other as char, self.pos))),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("numeric bytes are ASCII");
        text.parse::<f64>().map(Value::Number).map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self.bytes.get(self.pos).ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| Error::new("non-ASCII \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(Error::new(format!("unknown escape `\\{}`", other as char))),
                    }
                }
                _ => {
                    // Re-borrow the full UTF-8 character starting at pos - 1.
                    let rest = std::str::from_utf8(&self.bytes[self.pos - 1..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty remainder");
                    out.push(c);
                    self.pos += c.len_utf8() - 1;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(Error::new(format!("expected `,` or `]`, found `{}`", other as char))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => return Err(Error::new(format!("expected `,` or `}}`, found `{}`", other as char))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(from_str::<usize>(&to_string(&42usize).unwrap()).unwrap(), 42);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
        let x = 0.1f32;
        assert_eq!(from_str::<f32>(&to_string(&x).unwrap()).unwrap(), x);
    }

    #[test]
    fn vectors_and_nesting_roundtrip() {
        let v: Vec<Vec<f32>> = vec![vec![1.5, -2.25], vec![], vec![3.0]];
        let text = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<f32>>>(&text).unwrap(), v);
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v: Vec<usize> = from_str(" [ 1 , 2 ,\n3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn garbage_is_an_error() {
        assert!(from_str::<usize>("not json").is_err());
        assert!(from_str::<usize>("[1,").is_err());
        assert!(from_str::<usize>("1 trailing").is_err());
        assert!(from_str::<Vec<usize>>("{\"a\":1}").is_err());
    }

    #[test]
    fn unicode_strings_roundtrip() {
        let s = "héllo → 世界 \"quoted\"".to_string();
        assert_eq!(from_str::<String>(&to_string(&s).unwrap()).unwrap(), s);
    }
}
