//! Derive macros for the vendored `serde` stub.
//!
//! Supports exactly the type shapes used in this workspace:
//!
//! * structs with named fields (any visibility, arbitrary field types that
//!   themselves implement the traits), and
//! * enums whose variants all carry no data (serialized as their name).
//!
//! Generics, tuple structs, payload-carrying enum variants and `#[serde(...)]`
//! attributes are intentionally unsupported and produce a compile error, so
//! an unsupported shape fails loudly instead of round-tripping wrongly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (conversion to `serde::Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item.shape {
        Shape::Struct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Object(vec![{pushes}])\n\
                     }}\n\
                 }}",
                name = item.name
            )
        }
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => serde::Value::String(\"{v}\".to_string()),", name = item.name))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}",
                name = item.name
            )
        }
    };
    code.parse().expect("serde_derive: generated Serialize impl failed to parse")
}

/// Derives `serde::Deserialize` (reconstruction from `serde::Value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item.shape {
        Shape::Struct(fields) => {
            let inits: String = fields.iter().map(|f| format!("{f}: serde::field(obj, \"{f}\")?,")).collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                         let obj = v.as_object().ok_or_else(|| serde::DeError::new(\"expected object for {name}\"))?;\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}",
                name = item.name
            )
        }
        Shape::Enum(variants) => {
            let arms: String =
                variants.iter().map(|v| format!("\"{v}\" => Ok({name}::{v}),", name = item.name)).collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                         let s = v.as_str().ok_or_else(|| serde::DeError::new(\"expected string for {name}\"))?;\n\
                         match s {{\n\
                             {arms}\n\
                             other => Err(serde::DeError::new(format!(\"unknown {name} variant `{{other}}`\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                name = item.name
            )
        }
    };
    code.parse().expect("serde_derive: generated Deserialize impl failed to parse")
}

enum Shape {
    /// Named fields of a braced struct.
    Struct(Vec<String>),
    /// Unit variants of an enum.
    Enum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Parses `[attrs] [vis] (struct|enum) Name { body }` from the derive input.
fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attributes(&mut tokens);
    skip_visibility(&mut tokens);

    let kind = match tokens.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    let body = match tokens.next() {
        Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => group.stream(),
        other => panic!(
            "serde_derive: only braced structs and enums are supported for `{name}` (generics, \
             tuple structs and unit structs are not), found {other:?}"
        ),
    };

    let shape = match kind.as_str() {
        "struct" => Shape::Struct(parse_named_fields(body, &name)),
        "enum" => Shape::Enum(parse_unit_variants(body, &name)),
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    Item { name, shape }
}

/// Extracts field names from a named-field struct body.
fn parse_named_fields(body: TokenStream, type_name: &str) -> Vec<String> {
    let mut tokens = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        skip_visibility(&mut tokens);
        match tokens.next() {
            None => break,
            Some(TokenTree::Ident(ident)) => fields.push(ident.to_string()),
            other => panic!("serde_derive: expected field name in `{type_name}`, found {other:?}"),
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field in `{type_name}`, found {other:?}"),
        }
        // Consume the type up to the next top-level comma. Commas inside
        // delimiter groups are separate token trees already; commas inside
        // angle-bracketed generics need explicit depth tracking.
        let mut angle_depth = 0usize;
        loop {
            match tokens.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth = angle_depth.saturating_sub(1),
                    ',' if angle_depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
    fields
}

/// Extracts variant names from an enum body, rejecting payload variants.
fn parse_unit_variants(body: TokenStream, type_name: &str) -> Vec<String> {
    let mut tokens = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        match tokens.next() {
            None => break,
            Some(TokenTree::Ident(ident)) => variants.push(ident.to_string()),
            other => panic!("serde_derive: expected variant name in `{type_name}`, found {other:?}"),
        }
        match tokens.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            other => panic!(
                "serde_derive: only unit enum variants are supported; `{type_name}` has a variant \
                 with a payload or discriminant ({other:?})"
            ),
        }
    }
    variants
}

/// Skips `#[...]` attribute pairs (including doc comments).
fn skip_attributes(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        tokens.next();
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
            other => panic!("serde_derive: malformed attribute, found {other:?}"),
        }
    }
}

/// Skips `pub`, `pub(crate)`, `pub(in ...)` and similar visibility prefixes.
fn skip_visibility(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(ident)) if ident.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis) {
            tokens.next();
        }
    }
}
