//! Minimal, dependency-free stand-in for `proptest`.
//!
//! Supports the subset used by this workspace's property tests: the
//! [`proptest!`] macro over functions whose arguments are drawn from range
//! strategies and the [`collection`] strategies, `prop_assert!` /
//! `prop_assert_eq!`, and [`ProptestConfig::with_cases`].
//!
//! Each test function runs its body for `cases` deterministic pseudo-random
//! inputs (seeded from the test's name), so failures are reproducible. There
//! is no shrinking: a failing case panics with the regular assert message.

use std::ops::Range;

/// Per-test configuration (number of random cases).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// How many random inputs to run the test body with.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic test RNG (SplitMix64), seeded from the test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds an RNG whose stream depends only on `name`.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self { state: h }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values for one test argument.
pub trait Strategy {
    /// The type of value produced.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                assert!(span > 0, "proptest: empty range strategy");
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

/// Collection strategies (`vec`, `hash_set`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy producing a `Vec` of values with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come from
    /// `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// Strategy producing a `HashSet` with up to `size` elements.
    pub struct HashSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// A `HashSet` with up to `size` distinct elements drawn from `elem`.
    pub fn hash_set<S: Strategy>(elem: S, size: Range<usize>) -> HashSetStrategy<S> {
        HashSetStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.clone().sample(rng);
            let mut out = HashSet::with_capacity(target);
            for _ in 0..target {
                out.insert(self.elem.sample(rng));
            }
            out
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestRng};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each function runs its body for every random
/// sample of its `arg in strategy` arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut __proptest_rng = $crate::TestRng::deterministic(stringify!($name));
                for __proptest_case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __proptest_rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, f in -1.0f32..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_respects_size(v in crate::collection::vec(0usize..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn hash_set_strategy_bounds_size(s in crate::collection::hash_set(0usize..100, 0..10)) {
            prop_assert!(s.len() < 10);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = super::TestRng::deterministic("t");
        let mut b = super::TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = super::TestRng::deterministic("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
