//! Minimal, dependency-free stand-in for `serde`.
//!
//! The workspace builds without network access, so this vendored crate
//! provides just what the reproduction needs: a [`Value`] document model, the
//! [`Serialize`] / [`Deserialize`] traits expressed over it, impls for the
//! primitive and container types used by the models, and re-exported derive
//! macros (from the sibling `serde_derive` stub) covering named-field structs
//! and unit-variant enums.
//!
//! `serde_json` (also vendored) renders [`Value`] to JSON text and parses it
//! back, so model snapshots and dataset files round-trip exactly like they
//! would with the real crates.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;
use std::fmt;

/// A dynamically typed document value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; integers are exact up to 2^53.
    Number(f64),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// Key/value pairs, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The fields of an object value, or `None`.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The string content, or `None`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a field of an object value by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Conversion into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a document value.
    fn to_value(&self) -> Value;
}

/// Reconstruction from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a document value.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Extracts and deserializes a named field of an object (helper used by the
/// derive macro).
pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => Err(DeError::new(format!("missing field `{name}`"))),
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) if n.fract() == 0.0 => Ok(*n as $t),
                    _ => Err(DeError::new(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Number(n) => Ok(*n),
            _ => Err(DeError::new("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Number(n) => Ok(*n as f32),
            _ => Err(DeError::new("expected number")),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(DeError::new("expected string")),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::String((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::new("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 2 => Ok((A::from_value(&items[0])?, B::from_value(&items[1])?)),
            _ => Err(DeError::new("expected two-element array")),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect(),
            _ => Err(DeError::new("expected object")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(usize::from_value(&7usize.to_value()).unwrap(), 7);
        assert_eq!(f32::from_value(&0.25f32.to_value()).unwrap(), 0.25);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
        let v: Vec<usize> = vec![1, 2, 3];
        assert_eq!(Vec::<usize>::from_value(&v.to_value()).unwrap(), v);
        assert_eq!(Option::<usize>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn f32_roundtrip_is_exact_through_f64() {
        for &x in &[0.1f32, -1.5e-7, 3.4e38, f32::MIN_POSITIVE] {
            assert_eq!(f32::from_value(&x.to_value()).unwrap(), x);
        }
    }

    #[test]
    fn shape_mismatches_are_errors() {
        assert!(usize::from_value(&Value::String("x".into())).is_err());
        assert!(usize::from_value(&Value::Number(1.5)).is_err());
        assert!(Vec::<usize>::from_value(&Value::Bool(true)).is_err());
    }

    #[test]
    fn object_field_lookup() {
        let obj = Value::Object(vec![("a".into(), Value::Number(1.0))]);
        assert_eq!(obj.get("a"), Some(&Value::Number(1.0)));
        assert_eq!(obj.get("b"), None);
        let fields = obj.as_object().unwrap();
        assert_eq!(super::field::<usize>(fields, "a").unwrap(), 1);
        assert!(super::field::<usize>(fields, "missing").is_err());
    }
}
